//! The structural elastic netlist IR.
//!
//! [`ElasticIr`] is one description of an elastic circuit that feeds
//! three consumers:
//!
//! * **simulation** — [`ElasticIr::elaborate`] lowers the IR onto
//!   [`elastic_core`] primitives and builds a runnable
//!   [`elastic_sim::Circuit`];
//! * **cost** — the `elastic-cost` crate walks the same nodes (via
//!   [`IrNodeTag`], channel widths and [`CostHint`]s) to produce a
//!   Table I area inventory;
//! * **DOT** — [`ElasticIr::to_netlist`]/[`ElasticIr::to_dot`] render the
//!   graph *before* elaboration, with the same shapes as
//!   [`elastic_sim::NetlistGraph`] extraction from a built
//!   circuit.
//!
//! Nodes are the paper's primitive set (EB, MEB, fork, join, branch,
//! merge, barrier, source, sink, variable-latency server, combinational
//! transform) plus an escape hatch ([`IrNodeKind::Custom`]) for
//! design-specific stages such as the processor's fetcher. Channels are
//! annotated with a thread count and an optional datapath width (bits) —
//! the width drives the cost model, which is why MEB-adjacent channels
//! should carry one.
//!
//! Structural invariants (one driver and one reader per channel, uniform
//! thread counts across a node's ports, primitive arities, and an
//! EB/MEB/latency-unit cut on every feedback cycle) are *not* enforced at
//! construction time; run the lint passes in [`crate::passes`] before
//! elaboration to get typed errors instead of build-time failures.

use elastic_core::{
    ArbiterKind, Barrier, Branch, ElasticBuffer, Fork, ForkMode, Join, MebKind, Merge,
};
use elastic_sim::{
    BuildError, ChannelId, Circuit, CircuitBuilder, Component, KernelBackend, LatencyModel,
    NetlistEdge, NetlistGraph, NetlistNodeKind, ProtocolError, ReadyPolicy, ScheduleMode, Sink,
    Source, Token, Transform, VarLatency,
};

/// Handle to a channel of an [`ElasticIr`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IrChannelId(pub(crate) usize);

impl IrChannelId {
    /// Raw index (also the index into
    /// [`Elaborated::channel_ids`]).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a node of an [`ElasticIr`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IrNodeId(pub(crate) usize);

pub(crate) fn node_id(index: usize) -> IrNodeId {
    IrNodeId(index)
}

impl IrNodeId {
    /// Raw index into the IR's node list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A point-to-point elastic channel of the IR.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IrChannel {
    /// Channel name (becomes the simulated channel's name verbatim).
    pub name: String,
    /// Thread count `S` of the channel's valid/ready handshake.
    pub threads: usize,
    /// Datapath width in bits, if known. Drives the cost model
    /// (`Inventory::from_ir` sizes a MEB by its port width); `None` means
    /// "not accounted" and costs as zero bits.
    pub width: Option<usize>,
}

/// One itemized non-structural cost contribution attached to a node —
/// the combinational logic the structural walk cannot see (an ALU, an
/// unrolled hash step, a decoder). Same shape as a
/// `CostItem` row: `count` instances of `les_each` logic elements.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CostHint {
    /// Row label in the rendered inventory.
    pub name: String,
    /// Instance count.
    pub count: usize,
    /// Logic elements per instance.
    pub les_each: usize,
}

/// Routing predicate of a [`IrNodeKind::Fork`] (which outputs receive
/// each token).
pub type RouteFn<T> = Box<dyn Fn(&T) -> Vec<bool> + Send>;
/// N-ary combine function of a [`IrNodeKind::Join`].
pub type CombineFn<T> = Box<dyn Fn(&[&T]) -> T + Send>;
/// Branch predicate of a [`IrNodeKind::Branch`].
pub type CondFn<T> = Box<dyn Fn(&T) -> bool + Send>;
/// Unary token map of a [`IrNodeKind::Transform`] or a variable-latency
/// server's transform.
pub type MapFn<T> = Box<dyn Fn(&T) -> T + Send>;
/// Barrier release action (receives the 1-based release count).
pub type ReleaseFn = Box<dyn FnMut(u64) + Send>;
/// Factory of a [`IrNodeKind::Custom`] component: receives the
/// elaborated input and output [`ChannelId`]s (in port order) and returns
/// the built component.
pub type BuildFn<T> = Box<dyn FnOnce(&[ChannelId], &[ChannelId]) -> Box<dyn Component<T>> + Send>;

/// The typed node set of the IR — the paper's primitives plus testbench
/// endpoints and a custom escape hatch.
pub enum IrNodeKind<T: Token> {
    /// Token entry ([`Source`]). No inputs, one output.
    Source,
    /// Token exit ([`Sink`]). One input, no outputs.
    Sink {
        /// Record consumed tokens for inspection.
        capture: bool,
        /// Backpressure behaviour.
        policy: ReadyPolicy,
    },
    /// Single-thread elastic buffer (paper Sec. II). One input, one
    /// output; the protocol lint requires a 1-thread channel.
    Eb,
    /// Multithreaded elastic buffer (paper Sec. III). One input, one
    /// output.
    Meb {
        /// Microarchitecture (full / reduced / FIFO ablation). The
        /// meb-substitution pass rewrites this field.
        kind: MebKind,
        /// Output arbitration policy.
        arbiter: ArbiterKind,
        /// `(thread, token)` pairs present before the first cycle.
        initial: Vec<(usize, T)>,
        /// `true` when inserted by a buffer policy rather than the
        /// designer — the scope of
        /// [`MebTarget::Auto`](crate::passes::MebTarget::Auto).
        auto: bool,
    },
    /// M-Fork: replicate one input to N outputs. One input, ≥ 2 outputs.
    Fork {
        /// Control discipline (eager by default in synthesized designs).
        mode: ForkMode,
        /// Optional per-token routing mask (a routing fork).
        route: Option<RouteFn<T>>,
    },
    /// M-Join: combine N inputs into one output. ≥ 2 inputs, one output.
    Join {
        /// Combine function (one token per input, in port order).
        combine: CombineFn<T>,
    },
    /// M-Branch: conditional two-way routing. One input; output 0 is
    /// taken, output 1 is not-taken.
    Branch {
        /// Routing predicate.
        cond: CondFn<T>,
    },
    /// M-Merge: N-way reconvergence. ≥ 2 inputs, one output.
    Merge,
    /// Sense-reversing thread barrier. One input, one output.
    Barrier {
        /// Participation mask (`None` = every thread).
        participants: Option<Vec<bool>>,
        /// Invoked at the clock edge of every release.
        on_release: Option<ReleaseFn>,
    },
    /// Variable-latency server. One input, one output.
    VarLatency {
        /// Concurrent in-flight tokens.
        servers: usize,
        /// Latency distribution.
        model: LatencyModel<T>,
        /// Optional result transform applied on completion.
        transform: Option<MapFn<T>>,
    },
    /// Pure combinational unit. One input, one output.
    Transform {
        /// The computed function.
        f: MapFn<T>,
    },
    /// A design-specific component (e.g. the processor's fetcher). Port
    /// arities are whatever the factory expects; the protocol lint checks
    /// thread-count consistency only.
    Custom {
        /// Component factory, consumed at elaboration.
        build: BuildFn<T>,
        /// Whether the component registers every handshake path — i.e.
        /// whether it is a legal cut point for the cycle-cover lint (a
        /// variable-latency memory unit is; a combinational decode stage
        /// is not).
        cuts: bool,
    },
}

/// Payload-free classification of a node, for passes and cost/DOT
/// consumers that do not need the closures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IrNodeTag {
    /// [`IrNodeKind::Source`].
    Source,
    /// [`IrNodeKind::Sink`].
    Sink,
    /// [`IrNodeKind::Eb`].
    Eb,
    /// [`IrNodeKind::Meb`], carrying its current microarchitecture.
    Meb(MebKind),
    /// [`IrNodeKind::Fork`].
    Fork,
    /// [`IrNodeKind::Join`].
    Join,
    /// [`IrNodeKind::Branch`].
    Branch,
    /// [`IrNodeKind::Merge`].
    Merge,
    /// [`IrNodeKind::Barrier`].
    Barrier,
    /// [`IrNodeKind::VarLatency`].
    VarLatency,
    /// [`IrNodeKind::Transform`].
    Transform,
    /// [`IrNodeKind::Custom`], carrying its cut-point declaration.
    Custom {
        /// Whether the component cuts combinational cycles.
        cuts: bool,
    },
}

impl IrNodeTag {
    /// Whether this node registers every handshake path and therefore
    /// legally cuts a feedback cycle (the EB/MEB cut of paper Fig. 3;
    /// variable-latency servers also register their handshake).
    pub fn cuts_cycles(self) -> bool {
        matches!(
            self,
            IrNodeTag::Eb
                | IrNodeTag::Meb(_)
                | IrNodeTag::VarLatency
                | IrNodeTag::Custom { cuts: true }
        )
    }

    /// The structural class this node renders as in DOT.
    pub fn netlist_kind(self) -> NetlistNodeKind {
        match self {
            IrNodeTag::Source | IrNodeTag::Sink => NetlistNodeKind::Endpoint,
            IrNodeTag::Eb | IrNodeTag::Meb(_) => NetlistNodeKind::Buffer,
            IrNodeTag::Fork | IrNodeTag::Join | IrNodeTag::Branch | IrNodeTag::Merge => {
                NetlistNodeKind::Route
            }
            IrNodeTag::Barrier => NetlistNodeKind::Sync,
            IrNodeTag::VarLatency | IrNodeTag::Transform => NetlistNodeKind::Unit,
            IrNodeTag::Custom { .. } => NetlistNodeKind::Other,
        }
    }
}

/// A node of the IR: a named primitive instance wired to channels, with
/// optional cost hints for its combinational payload.
pub struct IrNode<T: Token> {
    name: String,
    kind: IrNodeKind<T>,
    inputs: Vec<IrChannelId>,
    outputs: Vec<IrChannelId>,
    cost_hints: Vec<CostHint>,
}

impl<T: Token> IrNode<T> {
    /// Instance name (unique names make lints and traces readable).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's kind, with payload.
    pub fn kind(&self) -> &IrNodeKind<T> {
        &self.kind
    }

    pub(crate) fn kind_mut(&mut self) -> &mut IrNodeKind<T> {
        &mut self.kind
    }

    /// Payload-free classification.
    pub fn tag(&self) -> IrNodeTag {
        match &self.kind {
            IrNodeKind::Source => IrNodeTag::Source,
            IrNodeKind::Sink { .. } => IrNodeTag::Sink,
            IrNodeKind::Eb => IrNodeTag::Eb,
            IrNodeKind::Meb { kind, .. } => IrNodeTag::Meb(*kind),
            IrNodeKind::Fork { .. } => IrNodeTag::Fork,
            IrNodeKind::Join { .. } => IrNodeTag::Join,
            IrNodeKind::Branch { .. } => IrNodeTag::Branch,
            IrNodeKind::Merge => IrNodeTag::Merge,
            IrNodeKind::Barrier { .. } => IrNodeTag::Barrier,
            IrNodeKind::VarLatency { .. } => IrNodeTag::VarLatency,
            IrNodeKind::Transform { .. } => IrNodeTag::Transform,
            IrNodeKind::Custom { cuts, .. } => IrNodeTag::Custom { cuts: *cuts },
        }
    }

    /// Input channels, in port order.
    pub fn inputs(&self) -> &[IrChannelId] {
        &self.inputs
    }

    /// Output channels, in port order.
    pub fn outputs(&self) -> &[IrChannelId] {
        &self.outputs
    }

    pub(crate) fn inputs_mut(&mut self) -> &mut [IrChannelId] {
        &mut self.inputs
    }

    pub(crate) fn outputs_mut(&mut self) -> &mut [IrChannelId] {
        &mut self.outputs
    }

    /// Cost hints attached to this node.
    pub fn cost_hints(&self) -> &[CostHint] {
        &self.cost_hints
    }
}

/// Errors raised while lowering an IR onto the simulator.
///
/// The lint passes catch the structural problems *before* elaboration;
/// these errors are what remains: a node wired to an impossible port
/// count, excess initial tokens in a MEB, or a netlist the
/// [`CircuitBuilder`] rejects.
#[derive(Debug)]
pub enum IrError {
    /// A node's port count does not match its kind (e.g. a branch with
    /// one output). The protocol lint reports this as a typed
    /// [`PassError`](crate::passes::PassError) if run first.
    BadPorts {
        /// Offending node.
        node: String,
        /// Declared input count.
        inputs: usize,
        /// Declared output count.
        outputs: usize,
    },
    /// A MEB's initial tokens exceed its per-thread capacity.
    Protocol(ProtocolError),
    /// The lowered netlist failed structural validation or rank
    /// scheduling (see [`BuildError`]).
    Build(BuildError),
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::BadPorts {
                node,
                inputs,
                outputs,
            } => write!(
                f,
                "node `{node}` is wired to {inputs} input(s) and {outputs} output(s), \
                 which its kind does not support"
            ),
            IrError::Protocol(e) => write!(f, "{e}"),
            IrError::Build(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IrError::Protocol(e) => Some(e),
            IrError::Build(e) => Some(e),
            IrError::BadPorts { .. } => None,
        }
    }
}

/// The result of [`ElasticIr::elaborate`]: the runnable circuit plus the
/// mapping from IR channels to simulator channels.
pub struct Elaborated<T: Token> {
    /// The built circuit.
    pub circuit: Circuit<T>,
    /// `channel_ids[i]` is the simulator channel elaborated from the IR
    /// channel with [`IrChannelId::index`] `i`. (Simulator [`ChannelId`]s
    /// are not constructible by hand, so this vector is the only bridge.)
    pub channel_ids: Vec<ChannelId>,
}

impl<T: Token> Elaborated<T> {
    /// The simulator channel elaborated from IR channel `ch`.
    pub fn channel(&self, ch: IrChannelId) -> ChannelId {
        self.channel_ids[ch.0]
    }
}

/// A structural elastic netlist: typed nodes connected by
/// thread/width-annotated channels. See the [module docs](self).
pub struct ElasticIr<T: Token> {
    channels: Vec<IrChannel>,
    nodes: Vec<IrNode<T>>,
    schedule: ScheduleMode,
    backend: KernelBackend,
}

impl<T: Token> Default for ElasticIr<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Token> ElasticIr<T> {
    /// An empty IR.
    pub fn new() -> Self {
        Self {
            channels: Vec::new(),
            nodes: Vec::new(),
            schedule: ScheduleMode::default(),
            backend: KernelBackend::default(),
        }
    }

    /// Selects the evaluation-order schedule passed through to
    /// [`CircuitBuilder::set_schedule`] at elaboration.
    pub fn set_schedule(&mut self, mode: ScheduleMode) {
        self.schedule = mode;
    }

    /// Selects the settle-kernel backend of the elaborated circuit.
    /// [`KernelBackend::Fused`] makes [`elaborate`](Self::elaborate)
    /// install [`crate::compile::fuse`] so the built circuit runs the
    /// lowered op table. The backend is a *kernel* choice, not a
    /// structural one: it does not enter
    /// [`structural_hash`](Self::structural_hash), so fused and
    /// interpreted runs of the same netlist share sweep-cache identity.
    pub fn set_backend(&mut self, backend: KernelBackend) {
        self.backend = backend;
    }

    /// Chainable [`set_backend`](Self::set_backend).
    #[must_use]
    pub fn with_backend(mut self, backend: KernelBackend) -> Self {
        self.set_backend(backend);
        self
    }

    /// The settle-kernel backend the elaborated circuit will use.
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// Declares a channel supporting `threads` threads, with no width
    /// annotation.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn channel(&mut self, name: impl Into<String>, threads: usize) -> IrChannelId {
        assert!(threads > 0, "a channel must support at least one thread");
        let id = IrChannelId(self.channels.len());
        self.channels.push(IrChannel {
            name: name.into(),
            threads,
            width: None,
        });
        id
    }

    /// Declares a channel with a datapath width annotation (bits).
    pub fn channel_with_width(
        &mut self,
        name: impl Into<String>,
        threads: usize,
        width: usize,
    ) -> IrChannelId {
        let id = self.channel(name, threads);
        self.channels[id.0].width = Some(width);
        id
    }

    /// Annotates (or re-annotates) a channel's datapath width.
    pub fn set_width(&mut self, ch: IrChannelId, width: usize) {
        self.channels[ch.0].width = Some(width);
    }

    /// Adds a node wired to the given channels (port order preserved).
    ///
    /// # Panics
    ///
    /// Panics if any channel handle is out of range (belongs to another
    /// IR).
    pub fn add(
        &mut self,
        name: impl Into<String>,
        kind: IrNodeKind<T>,
        inputs: Vec<IrChannelId>,
        outputs: Vec<IrChannelId>,
    ) -> IrNodeId {
        for ch in inputs.iter().chain(outputs.iter()) {
            assert!(ch.0 < self.channels.len(), "channel belongs to another IR");
        }
        let id = IrNodeId(self.nodes.len());
        self.nodes.push(IrNode {
            name: name.into(),
            kind,
            inputs,
            outputs,
            cost_hints: Vec::new(),
        });
        id
    }

    /// Attaches a cost hint to a node (see [`CostHint`]).
    pub fn add_cost_hint(
        &mut self,
        node: IrNodeId,
        name: impl Into<String>,
        count: usize,
        les_each: usize,
    ) {
        self.nodes[node.0].cost_hints.push(CostHint {
            name: name.into(),
            count,
            les_each,
        });
    }

    /// A stable 64-bit FNV-1a digest of the netlist *structure*: channel
    /// names, thread counts and widths, plus node names, tags and port
    /// connectivity, all in index order. A MEB's behavioural payload —
    /// its microarchitecture (including a FIFO's depth), its arbiter and
    /// its initial `(thread, token)` occupancy — is hashed explicitly,
    /// so two IRs differing only in a buffer depth, arbitration policy
    /// or pre-loaded token can never collide: transforming passes mutate
    /// exactly these fields, and a collision would silently poison the
    /// [`SweepService`](elastic_sim::SweepService) campaign cache.
    /// Closures (sink policies, join combiners), the `auto` provenance
    /// flag and cost hints do not participate — two IRs with equal
    /// hashes elaborate behaviourally identical circuits.
    ///
    /// The digest is deliberately hand-rolled (not
    /// [`std::hash::Hash`]-based) so it is stable across processes and
    /// Rust versions, making it usable as the IR component of a
    /// [`campaign_key`](elastic_sim::campaign_key) for memoized sweeps.
    pub fn structural_hash(&self) -> u64 {
        struct Fnv(u64);
        impl Fnv {
            fn eat(&mut self, bytes: &[u8]) {
                for &b in bytes {
                    self.0 ^= u64::from(b);
                    self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            fn word(&mut self, w: u64) {
                self.eat(&w.to_le_bytes());
            }
        }
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        h.word(self.channels.len() as u64);
        for ch in &self.channels {
            h.eat(ch.name.as_bytes());
            h.eat(&[0xFF]); // name terminator: ("ab","c") != ("a","bc")
            h.word(ch.threads as u64);
            h.word(ch.width.map_or(u64::MAX, |w| w as u64));
        }
        h.word(self.nodes.len() as u64);
        for node in &self.nodes {
            h.eat(node.name().as_bytes());
            h.eat(&[0xFF]);
            // Tag names are part of the public API; Debug is stable here.
            h.eat(format!("{:?}", node.tag()).as_bytes());
            h.eat(&[0xFF]);
            if let IrNodeKind::Meb {
                kind,
                arbiter,
                initial,
                ..
            } = node.kind()
            {
                match kind {
                    MebKind::Full => h.word(1),
                    MebKind::Reduced => h.word(2),
                    MebKind::Fifo { depth } => {
                        h.word(3);
                        h.word(*depth as u64);
                    }
                }
                h.eat(format!("{arbiter:?}").as_bytes());
                h.eat(&[0xFF]);
                h.word(initial.len() as u64);
                for (thread, token) in initial {
                    h.word(*thread as u64);
                    // Tokens are `Debug`-bounded; their rendering is the
                    // only process-stable identity available for them.
                    h.eat(format!("{token:?}").as_bytes());
                    h.eat(&[0xFF]);
                }
            }
            h.word(node.inputs().len() as u64);
            for inp in node.inputs() {
                h.word(inp.index() as u64);
            }
            h.word(node.outputs().len() as u64);
            for out in node.outputs() {
                h.word(out.index() as u64);
            }
        }
        h.word(match self.schedule {
            ScheduleMode::Ranked => 0,
            ScheduleMode::Insertion => 1,
            ScheduleMode::Reversed => 2,
        });
        h.0
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// A channel's annotation record.
    pub fn channel_info(&self, ch: IrChannelId) -> &IrChannel {
        &self.channels[ch.0]
    }

    /// Iterates over all channels (index order = [`IrChannelId::index`]).
    pub fn channels(&self) -> impl Iterator<Item = &IrChannel> {
        self.channels.iter()
    }

    /// A node by handle.
    pub fn node(&self, id: IrNodeId) -> &IrNode<T> {
        &self.nodes[id.0]
    }

    pub(crate) fn node_mut(&mut self, id: IrNodeId) -> &mut IrNode<T> {
        &mut self.nodes[id.0]
    }

    /// Iterates over all nodes (index order = [`IrNodeId::index`]).
    pub fn nodes(&self) -> impl Iterator<Item = &IrNode<T>> {
        self.nodes.iter()
    }

    /// Finds a node by instance name.
    pub fn node_named(&self, name: &str) -> Option<IrNodeId> {
        self.nodes.iter().position(|n| n.name == name).map(IrNodeId)
    }

    /// Finds a channel by name (first match).
    pub fn channel_named(&self, name: &str) -> Option<IrChannelId> {
        self.channels
            .iter()
            .position(|c| c.name == name)
            .map(IrChannelId)
    }

    /// The node driving channel `ch` (first node listing it as an
    /// output), if any. Unique on a linted IR.
    pub fn driver_of(&self, ch: IrChannelId) -> Option<IrNodeId> {
        self.nodes
            .iter()
            .position(|n| n.outputs.contains(&ch))
            .map(IrNodeId)
    }

    /// The node reading channel `ch` (first node listing it as an
    /// input), if any. Unique on a linted IR.
    pub fn reader_of(&self, ch: IrChannelId) -> Option<IrNodeId> {
        self.nodes
            .iter()
            .position(|n| n.inputs.contains(&ch))
            .map(IrNodeId)
    }

    /// The effective datapath width of a node: the first width annotation
    /// among its output channels, then its input channels; `0` when
    /// nothing is annotated.
    pub fn node_width(&self, id: IrNodeId) -> usize {
        let node = &self.nodes[id.0];
        node.outputs
            .iter()
            .chain(node.inputs.iter())
            .find_map(|&ch| self.channels[ch.0].width)
            .unwrap_or(0)
    }

    /// The thread count a node operates on: its first output's (for
    /// sources) or first input's channel threads. Returns 1 for a node
    /// with no ports (which the protocol lint rejects).
    pub fn node_threads(&self, id: IrNodeId) -> usize {
        let node = &self.nodes[id.0];
        node.inputs
            .iter()
            .chain(node.outputs.iter())
            .map(|&ch| self.channels[ch.0].threads)
            .next()
            .unwrap_or(1)
    }

    /// Extracts the structural graph of the IR — same shape as
    /// [`Circuit::netlist`](elastic_sim::Circuit::netlist) extraction
    /// from a built circuit, but available *before* (or instead of)
    /// elaboration. Channels missing a driver or reader are skipped
    /// (the protocol lint reports them).
    pub fn to_netlist(&self) -> NetlistGraph {
        let mut driver: Vec<Option<usize>> = vec![None; self.channels.len()];
        let mut reader: Vec<Option<usize>> = vec![None; self.channels.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for ch in &node.outputs {
                driver[ch.0].get_or_insert(i);
            }
            for ch in &node.inputs {
                reader[ch.0].get_or_insert(i);
            }
        }
        let components = self.nodes.iter().map(|n| n.name.clone()).collect();
        let kinds = self.nodes.iter().map(|n| n.tag().netlist_kind()).collect();
        let edges = self
            .channels
            .iter()
            .enumerate()
            .filter_map(|(ci, spec)| match (driver[ci], reader[ci]) {
                (Some(from), Some(to)) => Some(NetlistEdge {
                    channel: spec.name.clone(),
                    threads: spec.threads,
                    from,
                    to,
                }),
                _ => None,
            })
            .collect();
        NetlistGraph {
            components,
            kinds,
            edges,
        }
    }

    /// Renders the IR in Graphviz DOT syntax (see
    /// [`NetlistGraph::to_dot`]).
    pub fn to_dot(&self) -> String {
        self.to_netlist().to_dot()
    }

    /// Lowers the IR onto [`elastic_core`] primitives and builds the
    /// runnable circuit.
    ///
    /// Channels are created in IR order (so
    /// [`Elaborated::channel_ids`] is index-aligned), then components in
    /// node order; [`CircuitBuilder::build`] then validates and compiles
    /// the rank schedule.
    ///
    /// # Errors
    ///
    /// [`IrError::BadPorts`] when a node's wiring does not fit its kind,
    /// [`IrError::Protocol`] when a MEB's initial tokens overflow, and
    /// [`IrError::Build`] for anything the circuit builder rejects
    /// (missing drivers/readers, combinational loops, …). Run the lint
    /// passes first for friendlier, earlier diagnostics.
    pub fn elaborate(self) -> Result<Elaborated<T>, IrError> {
        let mut b = CircuitBuilder::<T>::new().with_schedule(self.schedule);
        b.set_backend(self.backend);
        if self.backend == KernelBackend::Fused {
            b.set_fuser(crate::compile::fuse::<T>);
        }
        let channel_ids: Vec<ChannelId> = self
            .channels
            .iter()
            .map(|c| b.channel(c.name.clone(), c.threads))
            .collect();
        let threads_of = |ports: &[IrChannelId]| self.channels[ports[0].0].threads;

        for node in self.nodes {
            let name = node.name;
            let ins: Vec<ChannelId> = node.inputs.iter().map(|c| channel_ids[c.0]).collect();
            let outs: Vec<ChannelId> = node.outputs.iter().map(|c| channel_ids[c.0]).collect();
            let bad = |_: &()| IrError::BadPorts {
                node: name.clone(),
                inputs: ins.len(),
                outputs: outs.len(),
            };
            let ok = |cond: bool| if cond { Ok(()) } else { Err(bad(&())) };
            match node.kind {
                IrNodeKind::Source => {
                    ok(ins.is_empty() && outs.len() == 1)?;
                    b.add(Source::<T>::new(name, outs[0], threads_of(&node.outputs)));
                }
                IrNodeKind::Sink { capture, policy } => {
                    ok(ins.len() == 1 && outs.is_empty())?;
                    let threads = threads_of(&node.inputs);
                    if capture {
                        b.add(Sink::<T>::with_capture(name, ins[0], threads, policy));
                    } else {
                        b.add(Sink::<T>::new(name, ins[0], threads, policy));
                    }
                }
                IrNodeKind::Eb => {
                    ok(ins.len() == 1 && outs.len() == 1)?;
                    b.add(ElasticBuffer::<T>::new(name, ins[0], outs[0]));
                }
                IrNodeKind::Meb {
                    kind,
                    arbiter,
                    initial,
                    ..
                } => {
                    ok(ins.len() == 1 && outs.len() == 1)?;
                    let threads = threads_of(&node.inputs);
                    let meb = kind
                        .build_initial::<T>(
                            name,
                            ins[0],
                            outs[0],
                            threads,
                            arbiter.build(),
                            initial,
                        )
                        .map_err(IrError::Protocol)?;
                    b.add_boxed(meb);
                }
                IrNodeKind::Fork { mode, route } => {
                    ok(ins.len() == 1 && outs.len() >= 2)?;
                    let threads = threads_of(&node.inputs);
                    let mut fork = Fork::new(name, ins[0], outs, threads, mode);
                    if let Some(f) = route {
                        fork = fork.with_route(f);
                    }
                    b.add(fork);
                }
                IrNodeKind::Join { combine } => {
                    ok(ins.len() >= 2 && outs.len() == 1)?;
                    let threads = threads_of(&node.inputs);
                    b.add(Join::new(name, ins, outs[0], threads, combine));
                }
                IrNodeKind::Branch { cond } => {
                    ok(ins.len() == 1 && outs.len() == 2)?;
                    let threads = threads_of(&node.inputs);
                    b.add(Branch::new(name, ins[0], outs[0], outs[1], threads, cond));
                }
                IrNodeKind::Merge => {
                    ok(ins.len() >= 2 && outs.len() == 1)?;
                    let threads = threads_of(&node.inputs);
                    b.add(Merge::new(name, ins, outs[0], threads));
                }
                IrNodeKind::Barrier {
                    participants,
                    on_release,
                } => {
                    ok(ins.len() == 1 && outs.len() == 1)?;
                    let threads = threads_of(&node.inputs);
                    let mut bar = Barrier::new(name, ins[0], outs[0], threads);
                    if let Some(mask) = participants {
                        bar = bar.with_participants(mask);
                    }
                    if let Some(f) = on_release {
                        bar = bar.with_release_action(f);
                    }
                    b.add(bar);
                }
                IrNodeKind::VarLatency {
                    servers,
                    model,
                    transform,
                } => {
                    ok(ins.len() == 1 && outs.len() == 1)?;
                    let threads = threads_of(&node.inputs);
                    let mut unit = VarLatency::new(name, ins[0], outs[0], threads, servers, model);
                    if let Some(f) = transform {
                        unit = unit.with_transform(f);
                    }
                    b.add(unit);
                }
                IrNodeKind::Transform { f } => {
                    ok(ins.len() == 1 && outs.len() == 1)?;
                    let threads = threads_of(&node.inputs);
                    b.add(Transform::new(name, ins[0], outs[0], threads, f));
                }
                IrNodeKind::Custom { build, .. } => {
                    b.add_boxed(build(&ins, &outs));
                }
            }
        }

        let circuit = b.build().map_err(IrError::Build)?;
        Ok(Elaborated {
            circuit,
            channel_ids,
        })
    }
}

impl<T: Token> std::fmt::Debug for ElasticIr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticIr")
            .field("channels", &self.channels.len())
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_sim::EvalMode;

    /// src → EB → capturing sink: the 1-thread baseline pipeline through
    /// the IR path.
    #[test]
    fn eb_pipeline_elaborates_and_runs() {
        let mut ir = ElasticIr::<u64>::new();
        let a = ir.channel("a", 1);
        let b = ir.channel("b", 1);
        ir.add("src", IrNodeKind::Source, vec![], vec![a]);
        ir.add("eb", IrNodeKind::Eb, vec![a], vec![b]);
        ir.add(
            "snk",
            IrNodeKind::Sink {
                capture: true,
                policy: ReadyPolicy::Always,
            },
            vec![b],
            vec![],
        );
        let mut e = ir.elaborate().expect("elaborates");
        e.circuit.set_eval_mode(EvalMode::Exhaustive);
        let src: &mut Source<u64> = e.circuit.get_mut("src").expect("src");
        src.extend(0, [7, 8, 9]);
        e.circuit.run(10).expect("runs");
        let snk: &Sink<u64> = e.circuit.get("snk").expect("snk");
        assert_eq!(
            snk.captured(0).iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
    }

    #[test]
    fn structural_hash_tracks_structure_not_payload() {
        let build = |sink_policy: ReadyPolicy| {
            let mut ir = ElasticIr::<u64>::new();
            let a = ir.channel("a", 2);
            let b = ir.channel_with_width("b", 2, 64);
            ir.add("src", IrNodeKind::Source, vec![], vec![a]);
            ir.add("eb", IrNodeKind::Eb, vec![a], vec![b]);
            ir.add(
                "snk",
                IrNodeKind::Sink {
                    capture: true,
                    policy: sink_policy,
                },
                vec![b],
                vec![],
            );
            ir
        };
        let base = build(ReadyPolicy::Always).structural_hash();
        // Rebuilding identically reproduces the digest (stable key).
        assert_eq!(base, build(ReadyPolicy::Always).structural_hash());
        // Payload closures/policies are not structure.
        assert_eq!(
            base,
            build(ReadyPolicy::Random { p: 0.5, seed: 1 }).structural_hash()
        );
        // Structure changes move the digest.
        let mut renamed = build(ReadyPolicy::Always);
        renamed.set_width(IrChannelId(1), 32);
        assert_ne!(base, renamed.structural_hash());
        let mut extra = build(ReadyPolicy::Always);
        extra.channel("c", 4);
        assert_ne!(base, extra.structural_hash());
        let mut resched = build(ReadyPolicy::Always);
        resched.set_schedule(ScheduleMode::Insertion);
        assert_ne!(base, resched.structural_hash());
    }

    /// Regression: buffer microarchitecture is behaviour, not payload —
    /// two IRs differing only in MEB kind, FIFO depth, arbiter or
    /// initial tokens must never share a digest, or the sweep-campaign
    /// cache would serve stale results once transforming passes mutate
    /// those fields.
    #[test]
    fn structural_hash_covers_meb_kind_depth_and_initial_tokens() {
        let build = |kind: MebKind, arbiter: ArbiterKind, initial: Vec<(usize, u64)>| {
            let mut ir = ElasticIr::<u64>::new();
            let a = ir.channel("a", 2);
            let b = ir.channel_with_width("b", 2, 32);
            ir.add("src", IrNodeKind::Source, vec![], vec![a]);
            ir.add(
                "buf",
                IrNodeKind::Meb {
                    kind,
                    arbiter,
                    initial,
                    auto: false,
                },
                vec![a],
                vec![b],
            );
            ir.add(
                "snk",
                IrNodeKind::Sink {
                    capture: true,
                    policy: ReadyPolicy::Always,
                },
                vec![b],
                vec![],
            );
            ir.structural_hash()
        };
        let rr = ArbiterKind::RoundRobin;
        let base = build(MebKind::Fifo { depth: 2 }, rr, vec![]);
        // Rebuilding identically reproduces the digest.
        assert_eq!(base, build(MebKind::Fifo { depth: 2 }, rr, vec![]));
        // FIFO depth alone moves the digest (the historical collision).
        assert_ne!(base, build(MebKind::Fifo { depth: 4 }, rr, vec![]));
        // So does the microarchitecture…
        assert_ne!(base, build(MebKind::Full, rr, vec![]));
        assert_ne!(base, build(MebKind::Reduced, rr, vec![]));
        assert_ne!(
            build(MebKind::Full, rr, vec![]),
            build(MebKind::Reduced, rr, vec![])
        );
        // …the arbitration policy…
        assert_ne!(
            base,
            build(MebKind::Fifo { depth: 2 }, ArbiterKind::Fixed, vec![])
        );
        // …and pre-loaded initial tokens (count, slot and value).
        let with_initial = build(MebKind::Fifo { depth: 2 }, rr, vec![(0, 7)]);
        assert_ne!(base, with_initial);
        assert_ne!(
            with_initial,
            build(MebKind::Fifo { depth: 2 }, rr, vec![(1, 7)])
        );
        assert_ne!(
            with_initial,
            build(MebKind::Fifo { depth: 2 }, rr, vec![(0, 8)])
        );
    }

    #[test]
    fn bad_ports_are_reported_at_elaboration() {
        let mut ir = ElasticIr::<u64>::new();
        let a = ir.channel("a", 2);
        // A branch with only one output is ill-formed.
        ir.add(
            "br",
            IrNodeKind::Branch {
                cond: Box::new(|_| true),
            },
            vec![a],
            vec![],
        );
        match ir.elaborate() {
            Err(IrError::BadPorts { node, .. }) => assert_eq!(node, "br"),
            other => panic!("unexpected: {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn to_netlist_matches_elaborated_structure() {
        let mut ir = ElasticIr::<u64>::new();
        let a = ir.channel("a", 2);
        let b = ir.channel_with_width("b", 2, 64);
        ir.add("src", IrNodeKind::Source, vec![], vec![a]);
        ir.add(
            "buf",
            IrNodeKind::Meb {
                kind: MebKind::Reduced,
                arbiter: ArbiterKind::RoundRobin,
                initial: Vec::new(),
                auto: false,
            },
            vec![a],
            vec![b],
        );
        ir.add(
            "snk",
            IrNodeKind::Sink {
                capture: false,
                policy: ReadyPolicy::Always,
            },
            vec![b],
            vec![],
        );
        let pre = ir.to_netlist();
        assert_eq!(pre.components, vec!["src", "buf", "snk"]);
        assert_eq!(
            pre.kinds,
            vec![
                NetlistNodeKind::Endpoint,
                NetlistNodeKind::Buffer,
                NetlistNodeKind::Endpoint
            ]
        );
        assert_eq!(pre.channel_count(), 2);
        let dot = ir.to_dot();
        assert!(dot.contains("shape=cylinder"), "{dot}");

        // The same nodes and edges survive elaboration (the built circuit
        // permutes components into rank order, so compare as sets).
        let e = ir.elaborate().expect("elaborates");
        let post = e.circuit.netlist();
        let mut pre_names = pre.components.clone();
        let mut post_names = post.components.clone();
        pre_names.sort();
        post_names.sort();
        assert_eq!(pre_names, post_names);
        assert_eq!(pre.channel_count(), post.channel_count());
    }

    #[test]
    fn width_annotations_resolve_per_node() {
        let mut ir = ElasticIr::<u64>::new();
        let a = ir.channel("a", 2);
        let b = ir.channel("b", 2);
        ir.add("src", IrNodeKind::Source, vec![], vec![a]);
        let buf = ir.add(
            "buf",
            IrNodeKind::Meb {
                kind: MebKind::Full,
                arbiter: ArbiterKind::RoundRobin,
                initial: Vec::new(),
                auto: false,
            },
            vec![a],
            vec![b],
        );
        assert_eq!(ir.node_width(buf), 0);
        ir.set_width(b, 32);
        assert_eq!(ir.node_width(buf), 32);
        assert_eq!(ir.node_threads(buf), 2);
        assert_eq!(ir.node(buf).tag(), IrNodeTag::Meb(MebKind::Full));
        assert!(ir.node(buf).tag().cuts_cycles());
        assert!(!IrNodeTag::Merge.cuts_cycles());
    }
}
