//! The thread barrier in action (paper, Sec. IV-C and Fig. 8): four
//! threads arrive at different times over several phases; nobody passes
//! until everyone has arrived, then all are released together.
//!
//! ```text
//! cargo run --example barrier_sync
//! ```

use mt_elastic::core::{ArbiterKind, Barrier, MebKind};
use mt_elastic::sim::{CircuitBuilder, GridTrace, ReadyPolicy, RowSpec, Sink, Source, Tagged};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const THREADS: usize = 4;
    let mut b = CircuitBuilder::<Tagged>::new();
    let x = b.channel("x", THREADS);
    let m = b.channel("m", THREADS);
    let y = b.channel("y", THREADS);

    // Staggered arrivals over three phases: thread t's phase-p token is
    // released at cycle p*12 + 3*t.
    let mut src = Source::new("src", x, THREADS);
    for t in 0..THREADS {
        for phase in 0..3u64 {
            src.push_at(t, phase * 12 + 3 * t as u64, Tagged::new(t, phase, phase));
        }
    }
    b.add(src);
    b.add_boxed(MebKind::Reduced.build_with::<Tagged>(
        "meb",
        x,
        m,
        THREADS,
        ArbiterKind::RoundRobin,
    ));
    b.add(Barrier::new("bar", m, y, THREADS).with_release_action(|n| {
        println!("  >> barrier released (phase {n})");
    }));
    b.add(Sink::with_capture("snk", y, THREADS, ReadyPolicy::Always));

    let mut circuit = b.build()?;
    circuit.enable_trace();
    circuit.set_deadlock_watchdog(Some(100));
    circuit.run_until(400, |c| {
        c.stats().total_transfers(y) >= (3 * THREADS) as u64
    })?;

    let rows: Vec<RowSpec> = std::iter::once(RowSpec::channel(x, "arrivals"))
        .chain(
            (0..THREADS)
                .map(|t| RowSpec::slot("bar", format!("fsm[{t}]"), format!("thread {t} FSM"))),
        )
        .chain(std::iter::once(RowSpec::channel(y, "released")))
        .collect();
    let grid = GridTrace::new(rows);
    println!("\n{}", grid.render(circuit.trace().expect("traced"), 0, 24));

    let snk: &Sink<Tagged> = circuit.get("snk").expect("sink exists");
    for phase in 0..3u64 {
        let pass_cycles: Vec<u64> = (0..THREADS)
            .map(|t| {
                snk.captured(t)
                    .iter()
                    .find(|(_, tok)| tok.seq == phase)
                    .expect("phase passed")
                    .0
            })
            .collect();
        let last_arrival = 3 * (THREADS as u64 - 1) + phase * 12;
        println!(
            "phase {phase}: last arrival released at cycle {last_arrival}, passes at {pass_cycles:?}"
        );
        assert!(pass_cycles.iter().all(|&c| c > last_arrival));
    }
    println!("\nno thread passed before the last arrived; all were released together.");
    Ok(())
}
