//! The multithreaded elastic MD5 circuit (paper, Sec. V-A).
//!
//! Topology (all channels `S`-threaded):
//!
//! ```text
//!               ┌────────────────── loopback ──────────────────┐
//!               ▼                                              │
//! feeder ─► M-Merge ─► MEB(in) ─► round unit ─► MEB(out) ─► barrier ─► M-Branch ─► sink
//!                                    ▲                  (after the output buffer)   (round == 4 exits)
//!                              global round counter
//!                            (incremented on barrier release)
//! ```
//!
//! Each pass through the round unit applies the 16 fully unrolled steps of
//! one MD5 round in a single cycle; a block therefore needs four trips
//! around the loop. Because "MD5 requires a different configuration for
//! each round, all threads need to synchronize before moving to the next
//! round" — the barrier blocks the flow after the output buffer and, when
//! released, the global round counter advances. The round unit *asserts*
//! that every token it processes agrees with the global configuration;
//! this is the synchronization property the barrier exists to guarantee.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use elastic_core::{ArbiterKind, MebKind};
use elastic_cost::primitives::{adder, lut_layer, mux};
use elastic_sim::{
    ChannelId, Circuit, EvalMode, KernelBackend, KernelStats, ReadyPolicy, SimError, Sink, Source,
    Token,
};
use elastic_synth::{
    CycleCoverLint, ElasticIr, IrChannelId, IrNodeKind, MebSubstitution, PassManager, ProtocolLint,
};

use crate::algo::{apply_steps, digest_bytes, pad_blocks, MD5_IV};
use elastic_sim::thread_letter;

/// A block-processing token circulating in the MD5 loop.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Md5Token {
    /// Owning thread.
    pub thread: usize,
    /// Wave index (the how-many-th block of this thread).
    pub wave: usize,
    /// The 512-bit message block.
    pub block: [u32; 16],
    /// Chaining value before this block.
    pub chain: [u32; 4],
    /// Working state (a, b, c, d), updated once per round trip.
    pub work: [u32; 4],
    /// Steps of the 64-step schedule applied so far (0–64; a round is 16
    /// steps).
    pub steps_done: u8,
    /// Length-equalization bubble: participates in barriers, discarded at
    /// the exit.
    pub phantom: bool,
}

impl Md5Token {
    /// Completed rounds (each round is 16 steps).
    pub fn rounds_done(&self) -> u8 {
        self.steps_done / 16
    }
}

impl Token for Md5Token {
    fn label(&self) -> String {
        let tag = thread_letter(self.thread);
        if self.phantom {
            format!("{}w{}s{}·", tag, self.wave, self.steps_done)
        } else {
            format!("{}w{}s{}", tag, self.wave, self.steps_done)
        }
    }
}

/// Errors from the MD5 circuit driver.
#[derive(Debug)]
pub enum Md5Error {
    /// More messages than hardware threads.
    TooManyMessages {
        /// Messages supplied.
        given: usize,
        /// Threads available.
        threads: usize,
    },
    /// The underlying simulation failed (protocol violation or deadlock —
    /// either would indicate a bug in the circuit).
    Sim(SimError),
    /// The run did not finish within the cycle budget.
    Timeout {
        /// Budget that was exhausted.
        max_cycles: u64,
    },
}

impl std::fmt::Display for Md5Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Md5Error::TooManyMessages { given, threads } => {
                write!(f, "{given} messages exceed the circuit's {threads} threads")
            }
            Md5Error::Sim(e) => write!(f, "simulation error: {e}"),
            Md5Error::Timeout { max_cycles } => {
                write!(f, "md5 circuit did not finish within {max_cycles} cycles")
            }
        }
    }
}

impl std::error::Error for Md5Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Md5Error::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for Md5Error {
    fn from(e: SimError) -> Self {
        Md5Error::Sim(e)
    }
}

/// Channel handles of the MD5 loop, for tracing and statistics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Md5Channels {
    /// feeder → merge (fresh blocks).
    pub fresh: ChannelId,
    /// branch → merge (blocks with rounds remaining).
    pub loopback: ChannelId,
    /// merge → input MEB.
    pub into_buf: ChannelId,
    /// input MEB → stage 0, stage boundaries, …, last stage → output MEB
    /// (length `stages + 1`).
    pub stages: Vec<ChannelId>,
    /// output MEB → barrier.
    pub obuf: ChannelId,
    /// barrier → branch.
    pub released: ChannelId,
    /// branch (finished) → sink.
    pub done: ChannelId,
}

/// The structural IR of the MD5 loop, before a buffer microarchitecture
/// is chosen — the one description behind simulation, cost and DOT (see
/// [`Md5Circuit::ir`]).
pub struct Md5Ir {
    /// The netlist. MEB nodes carry the placeholder `Reduced` kind until
    /// a [`MebSubstitution`] pass retargets them.
    pub ir: ElasticIr<Md5Token>,
    /// The global round-configuration counter wired into the stage
    /// assertions and the barrier's release action.
    pub round_counter: Arc<AtomicUsize>,
    /// Hardware thread count.
    pub threads: usize,
    /// Participating thread count.
    pub participants: usize,
    /// feeder → merge (fresh blocks).
    pub fresh: IrChannelId,
    /// branch → merge (blocks with rounds remaining).
    pub loopback: IrChannelId,
    /// merge → input MEB.
    pub into_buf: IrChannelId,
    /// input MEB → stage 0, …, last stage → output MEB (length
    /// `stages + 1`).
    pub stages: Vec<IrChannelId>,
    /// output MEB → barrier.
    pub obuf: IrChannelId,
    /// barrier → branch.
    pub released: IrChannelId,
    /// branch (finished) → sink.
    pub done: IrChannelId,
}

/// The assembled MD5 circuit plus its global round counter.
pub struct Md5Circuit {
    /// The simulated netlist.
    pub circuit: Circuit<Md5Token>,
    /// Channel handles.
    pub channels: Md5Channels,
    /// The global round-configuration counter (counts barrier releases;
    /// the active round is `counter % 4`).
    pub round_counter: Arc<AtomicUsize>,
    threads: usize,
    participants: usize,
}

impl Md5Circuit {
    /// Builds the loop for `threads` hardware threads, of which the first
    /// `participants` take part in the computation (and in the barrier),
    /// with the paper's single-cycle fully unrolled round unit.
    ///
    /// # Panics
    ///
    /// Panics if `participants == 0` or `participants > threads`.
    pub fn new(threads: usize, participants: usize, kind: MebKind) -> Self {
        Self::with_stages(threads, participants, kind, 1)
    }

    /// Builds the structural IR of the loop — *one* circuit description
    /// that feeds simulation ([`Md5Ir::ir`] → elaborate), the cost model
    /// (`Inventory::from_ir`) and DOT rendering (`ir.to_dot()`).
    ///
    /// Every MEB is emitted with the placeholder `Reduced`
    /// microarchitecture; [`with_stages`](Self::with_stages) retargets
    /// them with a [`MebSubstitution`] pass, and cost studies can do the
    /// same before calling `Inventory::from_ir`.
    ///
    /// # Panics
    ///
    /// Panics if `participants == 0`, `participants > threads`, or
    /// `stages` does not divide 16.
    pub fn ir(threads: usize, participants: usize, stages: usize) -> Md5Ir {
        assert!(
            participants > 0 && participants <= threads,
            "invalid participant count"
        );
        assert!(
            stages > 0 && 16 % stages == 0,
            "round stages must divide the 16 steps of a round"
        );
        let steps_per_stage = 16 / stages;
        let meb = |auto| IrNodeKind::Meb {
            kind: MebKind::Reduced,
            arbiter: ArbiterKind::RoundRobin,
            initial: Vec::new(),
            auto,
        };
        // The MEBs carry the 128-bit working-state token (the block itself
        // lives in embedded memory, mirroring the paper's accounting).
        const TOKEN_BITS: usize = 128;

        let mut ir = ElasticIr::<Md5Token>::new();
        let fresh = ir.channel("fresh", threads);
        let loopback = ir.channel("loop", threads);
        let into_buf = ir.channel("in", threads);
        let stage_chs: Vec<IrChannelId> = (0..=stages)
            .map(|i| ir.channel_with_width(format!("st{i}"), threads, TOKEN_BITS))
            .collect();
        let obuf = ir.channel_with_width("obuf", threads, TOKEN_BITS);
        let released = ir.channel("rel", threads);
        let done = ir.channel("done", threads);

        ir.add("feeder", IrNodeKind::Source, vec![], vec![fresh]);
        ir.add(
            "entry",
            IrNodeKind::Merge,
            vec![loopback, fresh],
            vec![into_buf],
        );
        ir.add("meb_in", meb(false), vec![into_buf], vec![stage_chs[0]]);

        let round_counter = Arc::new(AtomicUsize::new(0));
        // One combinational stage per `steps_per_stage` steps, each pair
        // of stages separated by a MEB pipeline register.
        for k in 0..stages {
            let rc = Arc::clone(&round_counter);
            let stage_out = if k == stages - 1 {
                // Last stage drives the output buffer's input directly.
                stage_chs[stages]
            } else {
                ir.channel(format!("stx{k}"), threads)
            };
            let stage = ir.add(
                format!("round_stage{k}"),
                IrNodeKind::Transform {
                    f: Box::new(move |tok: &Md5Token| {
                        let round = rc.load(Ordering::SeqCst) % 4;
                        let expect_steps = round * 16 + k * steps_per_stage;
                        assert_eq!(
                            usize::from(tok.steps_done) % 64,
                            expect_steps,
                            "token {} reached round stage {k} out of phase with the \
                             global configuration — the barrier failed its job",
                            tok.label()
                        );
                        let mut out = tok.clone();
                        out.work = apply_steps(out.work, &out.block, expect_steps, steps_per_stage);
                        out.steps_done += steps_per_stage as u8;
                        out
                    }),
                },
                vec![stage_chs[k]],
                vec![stage_out],
            );
            // The stage's share of the unrolled 16-step round datapath:
            // each step is four 32-bit adders, the 2-level boolean
            // function F/G/H/I and the 3-level message-word select.
            ir.add_cost_hint(
                stage,
                "unrolled step (4 adders + F + word select)",
                steps_per_stage,
                4 * adder(32) + 2 * lut_layer(32) + 3 * lut_layer(32),
            );
            if k == 0 {
                ir.add_cost_hint(stage, "round configuration mux", 1, mux(32, 3));
                ir.add_cost_hint(stage, "round counter + misc control", 1, 20);
            }
            if k < stages - 1 {
                ir.add(
                    format!("meb_stage{k}"),
                    meb(false),
                    vec![stage_out],
                    vec![stage_chs[k + 1]],
                );
            }
        }

        ir.add("meb_out", meb(false), vec![stage_chs[stages]], vec![obuf]);

        let rc = Arc::clone(&round_counter);
        let mask: Vec<bool> = (0..threads).map(|t| t < participants).collect();
        ir.add(
            "barrier",
            IrNodeKind::Barrier {
                participants: Some(mask),
                on_release: Some(Box::new(move |_| {
                    rc.fetch_add(1, Ordering::SeqCst);
                })),
            },
            vec![obuf],
            vec![released],
        );

        ir.add(
            "exit",
            IrNodeKind::Branch {
                cond: Box::new(|tok: &Md5Token| tok.steps_done >= 64),
            },
            vec![released],
            vec![done, loopback],
        );
        ir.add(
            "out",
            IrNodeKind::Sink {
                capture: true,
                policy: ReadyPolicy::Always,
            },
            vec![done],
            vec![],
        );

        Md5Ir {
            ir,
            round_counter,
            threads,
            participants,
            fresh,
            loopback,
            into_buf,
            stages: stage_chs,
            obuf,
            released,
            done,
        }
    }

    /// Builds the loop with the round unit *pipelined* into `stages`
    /// MEB-separated stages of `16/stages` steps each — the variant the
    /// paper sketches ("they could have been pipelined with minimum
    /// changes due to elasticity"). `stages = 1` is the paper's
    /// single-cycle round.
    ///
    /// Construction is the IR pipeline end to end: [`ir`](Self::ir) →
    /// [`MebSubstitution::all`]`(kind)` → protocol + cycle-cover lints →
    /// elaboration.
    ///
    /// # Panics
    ///
    /// Panics if `participants == 0`, `participants > threads`, or
    /// `stages` does not divide 16.
    pub fn with_stages(threads: usize, participants: usize, kind: MebKind, stages: usize) -> Self {
        Self::with_stages_on(
            threads,
            participants,
            kind,
            stages,
            KernelBackend::default(),
        )
    }

    /// [`with_stages`](Self::with_stages) with an explicit settle-kernel
    /// backend — [`KernelBackend::Fused`] elaborates to the lowered op
    /// table via [`elastic_synth::fuse`].
    ///
    /// # Panics
    ///
    /// Same as [`with_stages`](Self::with_stages).
    pub fn with_stages_on(
        threads: usize,
        participants: usize,
        kind: MebKind,
        stages: usize,
        backend: KernelBackend,
    ) -> Self {
        let built = Self::ir(threads, participants, stages);
        let Md5Ir {
            mut ir,
            round_counter,
            threads,
            participants,
            fresh,
            loopback,
            into_buf,
            stages: stage_chs,
            obuf,
            released,
            done,
        } = built;
        PassManager::new()
            .with(MebSubstitution::all(kind))
            .with(ProtocolLint)
            .with(CycleCoverLint)
            .run(&mut ir)
            .expect("md5 netlist passes lints");
        ir.set_backend(backend);
        let e = ir.elaborate().expect("md5 netlist is well-formed");
        let channels = Md5Channels {
            fresh: e.channel(fresh),
            loopback: e.channel(loopback),
            into_buf: e.channel(into_buf),
            stages: stage_chs.iter().map(|&c| e.channel(c)).collect(),
            obuf: e.channel(obuf),
            released: e.channel(released),
            done: e.channel(done),
        };
        Self {
            circuit: e.circuit,
            channels,
            round_counter,
            threads,
            participants,
        }
    }

    /// Hardware thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Participating thread count.
    pub fn participants(&self) -> usize {
        self.participants
    }
}

/// Drives an [`Md5Circuit`] to hash one message per thread, cycle by
/// cycle, handling multi-block chaining and length equalization with
/// phantom blocks.
#[derive(Debug)]
pub struct Md5Hasher {
    threads: usize,
    kind: MebKind,
    stages: usize,
    eval_mode: EvalMode,
    backend: KernelBackend,
}

impl Md5Hasher {
    /// A hasher with `threads` hardware threads and the given MEB
    /// microarchitecture (single-cycle unrolled round).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize, kind: MebKind) -> Self {
        assert!(threads > 0, "need at least one thread");
        Self {
            threads,
            kind,
            stages: 1,
            eval_mode: EvalMode::default(),
            backend: KernelBackend::default(),
        }
    }

    /// Selects the settle-kernel dispatch backend
    /// ([`KernelBackend::Fused`] runs the lowered op table).
    #[must_use]
    pub fn with_backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the simulation kernel's settle-phase scheduling mode (the
    /// event-driven dirty-set kernel by default; [`EvalMode::Exhaustive`]
    /// for oracle/ablation runs).
    #[must_use]
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// Pipelines the round unit into `stages` stages (see
    /// [`Md5Circuit::with_stages`]).
    ///
    /// # Panics
    ///
    /// Panics if `stages` does not divide 16.
    #[must_use]
    pub fn with_stages(mut self, stages: usize) -> Self {
        assert!(
            stages > 0 && 16 % stages == 0,
            "round stages must divide 16"
        );
        self.stages = stages;
        self
    }

    /// Hashes up to one message per thread through the elastic circuit and
    /// returns `(digests, cycles_used)`.
    ///
    /// # Errors
    ///
    /// * [`Md5Error::TooManyMessages`] if more messages than threads;
    /// * [`Md5Error::Sim`] on any protocol violation or deadlock;
    /// * [`Md5Error::Timeout`] if the run exceeds its internal cycle
    ///   budget (would indicate a bug — the budget is generous).
    pub fn hash_messages(&self, messages: &[&[u8]]) -> Result<(Vec<[u8; 16]>, u64), Md5Error> {
        self.hash_messages_instrumented(messages)
            .map(|(d, c, _)| (d, c))
    }

    /// Like [`hash_messages`](Self::hash_messages) but additionally
    /// returns the simulation kernel's counters for the run — the
    /// instrumentation behind the `kernel_ablation` comparison.
    ///
    /// # Errors
    ///
    /// Same as [`hash_messages`](Self::hash_messages).
    pub fn hash_messages_instrumented(
        &self,
        messages: &[&[u8]],
    ) -> Result<(Vec<[u8; 16]>, u64, KernelStats), Md5Error> {
        if messages.is_empty() {
            return Ok((Vec::new(), 0, KernelStats::default()));
        }
        if messages.len() > self.threads {
            return Err(Md5Error::TooManyMessages {
                given: messages.len(),
                threads: self.threads,
            });
        }
        let participants = messages.len();
        let blocks: Vec<Vec<[u32; 16]>> = messages.iter().map(|m| pad_blocks(m)).collect();
        let waves = blocks.iter().map(Vec::len).max().unwrap_or(0);

        let mut md5 = Md5Circuit::with_stages_on(
            self.threads,
            participants,
            self.kind,
            self.stages,
            self.backend,
        );
        md5.circuit.set_eval_mode(self.eval_mode);
        md5.circuit
            .set_deadlock_watchdog(Some(200 + 20 * self.threads as u64));

        let mut chain: Vec<[u32; 4]> = vec![MD5_IV; participants];
        let mut seen: Vec<usize> = vec![0; participants];
        let mut remaining = participants * waves;

        // Wave 0: one token per participating thread.
        {
            let feeder: &mut Source<Md5Token> =
                md5.circuit.get_mut("feeder").expect("feeder exists");
            for (t, thread_blocks) in blocks.iter().enumerate() {
                feeder.push(t, make_token(t, 0, thread_blocks, chain[t]));
            }
        }

        let max_cycles = 4_000 + (waves as u64) * (self.threads as u64 + 20) * 8;
        while remaining > 0 {
            if md5.circuit.cycle() >= max_cycles {
                return Err(Md5Error::Timeout { max_cycles });
            }
            md5.circuit.step()?;

            // Collect completions observed this cycle.
            let mut completions: Vec<Md5Token> = Vec::new();
            {
                let sink: &Sink<Md5Token> = md5.circuit.get("out").expect("sink exists");
                for t in 0..participants {
                    let captured = sink.captured(t);
                    for (_, tok) in &captured[seen[t]..] {
                        completions.push(tok.clone());
                    }
                    seen[t] = captured.len();
                }
            }
            for tok in completions {
                remaining -= 1;
                let t = tok.thread;
                if !tok.phantom {
                    debug_assert_eq!(tok.steps_done, 64);
                    chain[t] = [
                        tok.chain[0].wrapping_add(tok.work[0]),
                        tok.chain[1].wrapping_add(tok.work[1]),
                        tok.chain[2].wrapping_add(tok.work[2]),
                        tok.chain[3].wrapping_add(tok.work[3]),
                    ];
                }
                let next_wave = tok.wave + 1;
                if next_wave < waves {
                    let token = make_token(t, next_wave, &blocks[t], chain[t]);
                    let feeder: &mut Source<Md5Token> =
                        md5.circuit.get_mut("feeder").expect("feeder exists");
                    feeder.push(t, token);
                }
            }
        }

        let digests = (0..participants).map(|t| digest_bytes(chain[t])).collect();
        let kernel = *md5.circuit.stats().kernel();
        Ok((digests, md5.circuit.cycle(), kernel))
    }
}

/// Builds the wave-`wave` token for thread `t`: the real block if the
/// thread still has one, otherwise a phantom equalization bubble.
fn make_token(t: usize, wave: usize, thread_blocks: &[[u32; 16]], chain: [u32; 4]) -> Md5Token {
    match thread_blocks.get(wave) {
        Some(block) => Md5Token {
            thread: t,
            wave,
            block: *block,
            chain,
            work: chain,
            steps_done: 0,
            phantom: false,
        },
        None => Md5Token {
            thread: t,
            wave,
            block: [0; 16],
            chain: MD5_IV,
            work: MD5_IV,
            steps_done: 0,
            phantom: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{md5, to_hex};

    fn hash_with(kind: MebKind, threads: usize, messages: &[&[u8]]) -> Vec<String> {
        let hasher = Md5Hasher::new(threads, kind);
        let (digests, _) = hasher.hash_messages(messages).expect("hashing succeeds");
        digests.iter().map(to_hex).collect()
    }

    #[test]
    fn single_thread_single_block_matches_reference() {
        let got = hash_with(MebKind::Reduced, 1, &[b"abc"]);
        assert_eq!(got, vec![to_hex(&md5(b"abc"))]);
    }

    #[test]
    fn eight_threads_reduced_meb_match_reference() {
        let messages: Vec<Vec<u8>> = (0..8)
            .map(|i| format!("thread message #{i}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = messages.iter().map(|m| m.as_slice()).collect();
        let got = hash_with(MebKind::Reduced, 8, &refs);
        for (g, m) in got.iter().zip(&messages) {
            assert_eq!(g, &to_hex(&md5(m)));
        }
    }

    #[test]
    fn full_and_reduced_meb_produce_identical_digests() {
        let messages: [&[u8]; 4] = [b"alpha", b"beta", b"gamma", b"delta"];
        let full = hash_with(MebKind::Full, 4, &messages);
        let reduced = hash_with(MebKind::Reduced, 4, &messages);
        assert_eq!(full, reduced);
        assert_eq!(full[0], to_hex(&md5(b"alpha")));
    }

    #[test]
    fn multi_block_messages_with_unequal_lengths() {
        // 3 threads: 1-block, 2-block and 3-block messages — phantoms
        // equalize the shorter threads.
        let long: Vec<u8> = (0..130u8).collect(); // 3 blocks after padding
        let medium: Vec<u8> = (0..70u8).collect(); // 2 blocks
        let messages: [&[u8]; 3] = [b"short", &medium, &long];
        let got = hash_with(MebKind::Reduced, 3, &messages);
        for (g, m) in got.iter().zip(messages.iter()) {
            assert_eq!(g, &to_hex(&md5(m)));
        }
    }

    #[test]
    fn fewer_messages_than_threads() {
        let got = hash_with(MebKind::Reduced, 8, &[b"lonely" as &[u8], b"pair"]);
        assert_eq!(got[0], to_hex(&md5(b"lonely")));
        assert_eq!(got[1], to_hex(&md5(b"pair")));
    }

    #[test]
    fn too_many_messages_is_an_error() {
        let hasher = Md5Hasher::new(2, MebKind::Reduced);
        let err = hasher
            .hash_messages(&[b"a" as &[u8], b"b", b"c"])
            .unwrap_err();
        assert!(matches!(
            err,
            Md5Error::TooManyMessages {
                given: 3,
                threads: 2
            }
        ));
    }

    #[test]
    fn empty_input_is_empty_output() {
        let hasher = Md5Hasher::new(4, MebKind::Full);
        let (digests, cycles) = hasher.hash_messages(&[]).expect("trivially succeeds");
        assert!(digests.is_empty());
        assert_eq!(cycles, 0);
    }

    /// The paper's pipelining remark: splitting the round unit into 2, 4
    /// or 16 MEB-separated stages changes nothing architecturally.
    #[test]
    fn pipelined_round_unit_matches_reference() {
        let messages: [&[u8]; 3] = [b"abc", b"pipelined rounds", b"x"];
        let reference: Vec<String> = messages.iter().map(|m| to_hex(&md5(m))).collect();
        for stages in [2usize, 4, 16] {
            let hasher = Md5Hasher::new(4, MebKind::Reduced).with_stages(stages);
            let (digests, _) = hasher.hash_messages(&messages).expect("hashing succeeds");
            let got: Vec<String> = digests.iter().map(to_hex).collect();
            assert_eq!(got, reference, "stages = {stages}");
        }
    }

    /// Deeper round pipelines take more cycles per block (more stage
    /// traversals) but remain deadlock-free; the paper's point is that
    /// the *transformation* is free, not the latency.
    #[test]
    fn pipelined_rounds_cost_more_cycles_per_block() {
        let messages: [&[u8]; 2] = [b"abc", b"def"];
        let (_, c1) = Md5Hasher::new(2, MebKind::Reduced)
            .hash_messages(&messages)
            .expect("ok");
        let (_, c4) = Md5Hasher::new(2, MebKind::Reduced)
            .with_stages(4)
            .hash_messages(&messages)
            .expect("ok");
        assert!(c4 > c1, "4-stage {c4} vs single-cycle {c1}");
    }

    #[test]
    fn round_counter_advances_once_per_barrier_release() {
        // One wave × 4 rounds = 4 releases for a single-block run.
        let hasher = Md5Hasher::new(4, MebKind::Reduced);
        let messages: [&[u8]; 4] = [b"a", b"b", b"c", b"d"];
        let (digests, _) = hasher.hash_messages(&messages).expect("ok");
        assert_eq!(digests.len(), 4);
        // Correct digests imply the counter/barrier interplay was exact —
        // the round unit asserts phase agreement on every token.
        assert_eq!(to_hex(&digests[0]), to_hex(&md5(b"a")));
    }
}
