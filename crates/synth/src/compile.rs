//! The compile backend: lower a built component sequence into the fused
//! op table (see [`crate::lower`] for the table itself and
//! `docs/kernel.md` § "Fused settle kernel" for the full pipeline).
//!
//! [`fuse`] is the [`FuseFn`] installed on `CircuitBuilder` when a
//! circuit opts into [`KernelBackend::Fused`] — either directly, or via
//! [`ElasticIr::set_backend`](crate::ElasticIr::set_backend) before
//! elaboration. The builder calls it *after* applying the levelized rank
//! permutation, so the op table it returns is already in evaluation
//! order and the kernel's linear table walk is the levelized sweep.
//!
//! Lowering is a per-component typed downcast: each box is probed
//! against the closed set of paper primitives (`as_any().is::<C>()`,
//! then the consuming `into_any()` downcast) and stored unboxed in the
//! matching [`FusedOp`] variant. Anything unrecognised — custom user
//! primitives, [`IrNodeKind::Custom`] nodes — stays boxed as
//! [`FusedOp::Boxed`] and keeps vtable dispatch, so fusing is always
//! safe, merely less profitable on foreign components.
//!
//! [`KernelBackend::Fused`]: elastic_sim::KernelBackend::Fused
//! [`IrNodeKind::Custom`]: crate::IrNodeKind::Custom

use elastic_core::{
    Barrier, Branch, ElasticBuffer, FifoMeb, Fork, FullMeb, Join, Merge, ReducedMeb,
};
use elastic_sim::{Component, FuseFn, FusedTable, Sink, Source, Token, Transform, VarLatency};

use crate::lower::{FusedOp, OpTable};

/// Lowers one boxed component to its fused op, falling back to
/// [`FusedOp::Boxed`] when the concrete type is not a known primitive.
fn lower_one<T: Token>(c: Box<dyn Component<T>>) -> FusedOp<T> {
    macro_rules! probe {
        ($($ty:ty => $variant:ident),+ $(,)?) => {
            $(
                if c.as_any().is::<$ty>() {
                    let op = c
                        .into_any()
                        .downcast::<$ty>()
                        .expect("type verified by as_any().is() probe");
                    return FusedOp::$variant(*op);
                }
            )+
        };
    }
    probe! {
        Source<T> => Source,
        Sink<T> => Sink,
        ElasticBuffer<T> => Eb,
        FullMeb<T> => MebFull,
        ReducedMeb<T> => MebReduced,
        FifoMeb<T> => MebFifo,
        Fork<T> => Fork,
        Join<T> => Join,
        Branch<T> => Branch,
        Merge<T> => Merge,
        Barrier<T> => Barrier,
        VarLatency<T> => VarLatency,
        Transform<T> => Transform,
    }
    FusedOp::Boxed(c)
}

/// The fused-backend lowering: consumes the builder's rank-permuted
/// component vector and compiles it into an [`OpTable`].
///
/// This is the function to pass to
/// [`CircuitBuilder::set_fuser`](elastic_sim::CircuitBuilder::set_fuser)
/// (or to carry in `PipelineConfig::fuser`); its signature is exactly
/// [`FuseFn`]. [`ElasticIr::elaborate`](crate::ElasticIr::elaborate)
/// installs it automatically when the IR's backend is set to `Fused`.
pub fn fuse<T: Token>(components: Vec<Box<dyn Component<T>>>) -> Box<dyn FusedTable<T>> {
    // Bind through the alias so signature drift fails to compile here,
    // not at every distant install site.
    let _check: FuseFn<T> = fuse::<T>;
    Box::new(OpTable::new(
        components.into_iter().map(lower_one).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::ArbiterKind;
    use elastic_sim::{
        impl_as_any, CircuitBuilder, EvalCtx, KernelBackend, Ports, ReadyPolicy, TickCtx,
    };

    #[test]
    fn known_primitives_lower_unboxed() {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 2);
        let c = b.channel("c", 2);
        let comps: Vec<Box<dyn Component<u64>>> = vec![
            Box::new(Source::new("src", a, 2)),
            Box::new(ReducedMeb::new(
                "meb",
                a,
                c,
                2,
                ArbiterKind::RoundRobin.build(),
            )),
            Box::new(Sink::new("snk", c, 2, ReadyPolicy::Always)),
        ];
        let ops: Vec<FusedOp<u64>> = comps.into_iter().map(lower_one).collect();
        assert!(matches!(ops[0], FusedOp::Source(_)));
        assert!(matches!(ops[1], FusedOp::MebReduced(_)));
        assert!(matches!(ops[2], FusedOp::Sink(_)));
        // Names survive the unboxing (cold paths reuse the trait surface).
        assert_eq!(ops[1].as_component().name(), "meb");
    }

    /// A component the lowering has never heard of must keep working
    /// through the boxed fallback.
    struct Alien;
    impl Component<u64> for Alien {
        fn name(&self) -> &str {
            "alien"
        }
        fn ports(&self) -> Ports {
            Ports::default()
        }
        fn eval(&mut self, _ctx: &mut EvalCtx<'_, u64>) {}
        fn tick(&mut self, _ctx: &TickCtx<'_, u64>) {}
        impl_as_any!();
    }

    #[test]
    fn unknown_components_fall_back_to_boxed_dispatch() {
        let op = lower_one::<u64>(Box::new(Alien));
        assert!(matches!(op, FusedOp::Boxed(_)));
        assert_eq!(op.as_component().name(), "alien");
        let table = OpTable::new(vec![op]);
        assert_eq!(table.boxed_fallbacks(), 1);
    }

    #[test]
    fn fused_circuit_matches_interpreted_end_to_end() {
        let build = |backend: KernelBackend| {
            let mut b = CircuitBuilder::<u64>::new();
            let a = b.channel("a", 2);
            let c = b.channel("c", 2);
            let mut src = Source::new("src", a, 2);
            src.extend(0, 0..20u64);
            src.extend(1, 100..120u64);
            b.add(src);
            b.add(ReducedMeb::new(
                "meb",
                a,
                c,
                2,
                ArbiterKind::RoundRobin.build(),
            ));
            let mut snk = Sink::with_capture("snk", c, 2, ReadyPolicy::Always);
            snk.set_policy(1, ReadyPolicy::Random { p: 0.6, seed: 5 });
            b.add(snk);
            b.set_backend(backend);
            b.set_fuser(fuse::<u64>);
            b.build().expect("valid")
        };
        let mut interp = build(KernelBackend::Interpreted);
        let mut fused = build(KernelBackend::Fused);
        assert_eq!(interp.backend(), KernelBackend::Interpreted);
        assert_eq!(fused.backend(), KernelBackend::Fused);
        interp.run(400).expect("clean");
        fused.run(400).expect("clean");
        for t in 0..2 {
            let a: &Sink<u64> = interp.get("snk").expect("sink");
            let b: &Sink<u64> = fused.get("snk").expect("sink");
            assert_eq!(a.captured(t), b.captured(t), "thread {t} diverged");
        }
        // The fused run tallied per-op eval counters; interpreted did not.
        let ops: u64 = fused.stats().kernel().fused_op_evals.iter().sum();
        assert_eq!(ops, fused.stats().kernel().component_evals);
        assert_eq!(
            interp.stats().kernel().fused_op_evals.iter().sum::<u64>(),
            0
        );
    }
}
