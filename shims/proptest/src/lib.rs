//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! the subset of the proptest API its test suites use: the `proptest!`
//! macro, `Strategy` with `prop_map`, `Just`, `prop_oneof!`, `any`,
//! ranges as strategies, tuples, `prop::collection::vec`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case panics with its inputs formatted
//!   into the message; cases are derived deterministically from the test
//!   name and case index, so failures reproduce exactly on re-run.
//! * **No persistence files**, no forking, no timeout handling.
//!
//! The generation RNG is the same splitmix64 mixer the simulation's
//! deterministic policies use.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic generation RNG for one test case.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test named `name` (stable across runs).
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Run-count configuration (subset of proptest's `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of test-case values (subset of proptest's `Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy yielding a constant.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (backs `prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.0.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span + 1)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Blanket full-range generation (subset of proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_u64() as f64 / u64::MAX as f64
    }
}

/// Strategy for the full value range of `T` (proptest's `any`).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — a strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The `prop::` namespace (subset: `prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Length specification for [`vec()`]: a fixed size or a range.
        pub trait IntoSizeRange {
            /// Lower and inclusive upper length bound.
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "empty vec size range");
                (self.start, self.end - 1)
            }
        }

        impl IntoSizeRange for RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        /// Strategy generating vectors of `element` with a length drawn
        /// from `size`.
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.max == self.min {
                    self.min
                } else {
                    self.min + rng.below((self.max - self.min + 1) as u64) as usize
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            VecStrategy { element, min, max }
        }
    }
}

/// Everything a test module needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property tests: each `fn` runs `cases` times with inputs
/// drawn from the given strategies (deterministic per test name + case).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut prop_rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut prop_rng);)*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strategy),* ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_any_generate_in_bounds() {
        let mut rng = super::TestRng::for_case("shim", 0);
        for _ in 0..500 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn oneof_hits_every_alternative() {
        let s = prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)];
        let mut rng = super::TestRng::for_case("shim2", 1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && (seen.contains(&5) || seen.contains(&6)));
    }

    #[test]
    fn vec_strategy_respects_size() {
        let s = prop::collection::vec(0u64..10, 2..5);
        let mut rng = super::TestRng::for_case("shim3", 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let fixed = prop::collection::vec(0u64..3, 32usize);
        assert_eq!(fixed.generate(&mut rng).len(), 32);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(
            a in 1usize..5,
            b in any::<bool>(),
            pair in (1u64..10, 1u64..10),
        ) {
            prop_assert!((1..5).contains(&a));
            prop_assert_eq!(u64::from(b) | 1, 1);
            prop_assert!(pair.0 < 10 && pair.1 < 10);
        }
    }
}
