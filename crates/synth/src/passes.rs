//! IR passes: rewrites and lints over [`ElasticIr`].
//!
//! A [`Pass`] either rewrites the IR (e.g. [`MebSubstitution`], which
//! retargets buffer microarchitectures) or lints it (e.g.
//! [`ProtocolLint`], [`CycleCoverLint`]), failing with a typed
//! [`PassError`] instead of letting the problem surface later as a
//! build-time string or a simulation deadlock. [`PassManager`] runs a
//! sequence of passes and collects one [`PassReport`] per pass.
//!
//! The canonical pipeline — what [`DataflowBuilder::build_ir`](crate::DataflowBuilder::build_ir) runs after lowering — is:
//!
//! 1. [`MebSubstitution::auto`] — point every policy-inserted buffer at
//!    the configured MEB microarchitecture;
//! 2. [`ProtocolLint`] — single driver/reader per channel, uniform
//!    thread counts across each node's ports, primitive arities;
//! 3. [`CycleCoverLint`] — every structural cycle must contain an
//!    EB/MEB/latency-unit cut (the static version of the rank
//!    scheduler's Tarjan check, reported before any component is built).

use crate::ir::{ElasticIr, IrNodeId, IrNodeKind, IrNodeTag};
use elastic_core::{ArbiterKind, MebKind};
use elastic_sim::Token;

/// A typed diagnostic from a lint or rewrite pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PassError {
    /// A structural cycle with no EB/MEB/latency-unit cut: every
    /// handshake on it is combinational, so the circuit cannot be rank
    /// scheduled (and the hardware would oscillate).
    UnbufferedCycle {
        /// The nodes on the cycle, in traversal order.
        nodes: Vec<String>,
    },
    /// A node's ports disagree on the thread count (or an EB sits on a
    /// multithreaded channel).
    ThreadMismatch {
        /// Offending node.
        node: String,
        /// The channel whose thread count disagrees.
        channel: String,
        /// Thread count expected from the node's first port (or 1 for an
        /// EB).
        expected: usize,
        /// Thread count found on `channel`.
        got: usize,
    },
    /// A node's port count does not match its primitive kind.
    BadArity {
        /// Offending node.
        node: String,
        /// Declared input count.
        inputs: usize,
        /// Declared output count.
        outputs: usize,
    },
    /// A channel is driven by more than one node.
    MultipleDrivers {
        /// Offending channel.
        channel: String,
        /// All driving nodes.
        drivers: Vec<String>,
    },
    /// A channel is read by more than one node.
    MultipleReaders {
        /// Offending channel.
        channel: String,
        /// All reading nodes.
        readers: Vec<String>,
    },
    /// A channel has no driving node.
    NoDriver {
        /// Offending channel.
        channel: String,
    },
    /// A channel has no reading node.
    NoReader {
        /// Offending channel.
        channel: String,
    },
    /// A pass was pointed at a node that does not exist.
    NoSuchNode {
        /// The requested node name.
        node: String,
    },
    /// A MEB-targeted pass was pointed at a node of another kind.
    NotAMeb {
        /// Offending node.
        node: String,
    },
    /// A retiming move is not legal at the targeted buffer: the
    /// neighbour in the move direction is not a pure 1→1 `Transform`,
    /// the buffer holds initial tokens (which the transform would have
    /// to be applied to), or the move would uncover a feedback cycle.
    IllegalRetiming {
        /// The buffer the pass was pointed at.
        node: String,
        /// Why the move is rejected.
        reason: String,
    },
}

impl std::fmt::Display for PassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PassError::UnbufferedCycle { nodes } => {
                write!(
                    f,
                    "combinational loop with no EB/MEB cut: {}",
                    nodes.join(" -> ")
                )
            }
            PassError::ThreadMismatch {
                node,
                channel,
                expected,
                got,
            } => write!(
                f,
                "node `{node}` expects {expected} thread(s) but channel `{channel}` \
                 carries {got}"
            ),
            PassError::BadArity {
                node,
                inputs,
                outputs,
            } => write!(
                f,
                "node `{node}` is wired to {inputs} input(s) and {outputs} output(s), \
                 which its kind does not support"
            ),
            PassError::MultipleDrivers { channel, drivers } => write!(
                f,
                "channel `{channel}` has multiple drivers: {}",
                drivers.join(", ")
            ),
            PassError::MultipleReaders { channel, readers } => write!(
                f,
                "channel `{channel}` has multiple readers: {}",
                readers.join(", ")
            ),
            PassError::NoDriver { channel } => {
                write!(f, "channel `{channel}` has no driver")
            }
            PassError::NoReader { channel } => {
                write!(f, "channel `{channel}` has no reader")
            }
            PassError::NoSuchNode { node } => write!(f, "no node named `{node}`"),
            PassError::NotAMeb { node } => {
                write!(f, "node `{node}` is not a MEB; cannot substitute its kind")
            }
            PassError::IllegalRetiming { node, reason } => {
                write!(f, "cannot retime buffer `{node}`: {reason}")
            }
        }
    }
}

impl std::error::Error for PassError {}

/// Which way a retiming move shifts a buffer relative to token flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RetimeDirection {
    /// Move the buffer downstream, across the transform *reading* its
    /// output.
    Forward,
    /// Move the buffer upstream, across the transform *driving* its
    /// input.
    Backward,
}

impl std::fmt::Display for RetimeDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetimeDirection::Forward => write!(f, "forward"),
            RetimeDirection::Backward => write!(f, "backward"),
        }
    }
}

/// One machine-readable structural change made by a transforming pass —
/// the diff record an optimizer (or the cost model's delta check, or the
/// DOT highlighter) consumes without re-walking the IR. Every variant
/// carries the thread count and datapath width the affected buffer costs
/// at, so `elastic-cost`'s `expected_les_delta` can predict the
/// re-derived inventory exactly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PassDelta {
    /// A buffer's microarchitecture was rewritten in place
    /// ([`MebSubstitution`], `MebDepthSizing`).
    Resized {
        /// The rewritten MEB node.
        node: String,
        /// Microarchitecture before the rewrite.
        from: MebKind,
        /// Microarchitecture after the rewrite.
        to: MebKind,
        /// Thread count the buffer is costed at.
        threads: usize,
        /// Datapath width (bits) the buffer is costed at.
        width: usize,
    },
    /// A new buffer node was inserted on a channel (`SlackMatching`).
    Inserted {
        /// The new MEB node's name.
        node: String,
        /// The channel the buffer was inserted on.
        channel: String,
        /// The inserted buffer's microarchitecture.
        kind: MebKind,
        /// Thread count the buffer is costed at.
        threads: usize,
        /// Datapath width (bits) the buffer is costed at.
        width: usize,
    },
    /// A buffer was moved across an adjacent transform (`Retiming`).
    Moved {
        /// The moved buffer node.
        node: String,
        /// The transform node it moved across.
        across: String,
        /// Move direction.
        direction: RetimeDirection,
        /// The buffer's microarchitecture (`None` for a single-thread
        /// EB).
        kind: Option<MebKind>,
        /// Thread count the buffer is costed at.
        threads: usize,
        /// Datapath width (bits) before the move.
        from_width: usize,
        /// Datapath width (bits) after the move.
        to_width: usize,
    },
}

/// What one pass did: how many nodes it rewrote, how many entities it
/// checked, and the structured diff of every rewrite.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PassReport {
    /// Pass name (see [`Pass::name`]).
    pub pass: String,
    /// Nodes rewritten (0 for pure lints).
    pub changed: usize,
    /// Entities (nodes or channels) inspected.
    pub checked: usize,
    /// Machine-readable record of each structural change, in application
    /// order (empty for lints and no-op rewrites).
    pub deltas: Vec<PassDelta>,
}

impl PassReport {
    /// A delta-free report (lints, counting-only rewrites).
    pub fn new(pass: impl Into<String>, changed: usize, checked: usize) -> Self {
        Self {
            pass: pass.into(),
            changed,
            checked,
            deltas: Vec::new(),
        }
    }

    /// Attaches the structured diff (builder style).
    #[must_use]
    pub fn with_deltas(mut self, deltas: Vec<PassDelta>) -> Self {
        self.deltas = deltas;
        self
    }
}

/// A rewrite or lint over an [`ElasticIr`].
pub trait Pass<T: Token> {
    /// Stable pass name, used in reports.
    fn name(&self) -> &'static str;
    /// Runs the pass, mutating the IR in place.
    ///
    /// # Errors
    ///
    /// Returns the first [`PassError`] found.
    fn run(&mut self, ir: &mut ElasticIr<T>) -> Result<PassReport, PassError>;
}

/// Runs a sequence of passes in order, stopping at the first error.
pub struct PassManager<T: Token> {
    passes: Vec<Box<dyn Pass<T>>>,
}

impl<T: Token> Default for PassManager<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Token> PassManager<T> {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self { passes: Vec::new() }
    }

    /// The standard lint suite (no rewrites): [`ProtocolLint`] then
    /// [`CycleCoverLint`].
    pub fn lint_suite() -> Self {
        Self::new().with(ProtocolLint).with(CycleCoverLint)
    }

    /// Appends a pass (builder style).
    pub fn with(mut self, pass: impl Pass<T> + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: impl Pass<T> + 'static) {
        self.passes.push(Box::new(pass));
    }

    /// Runs every pass in order.
    ///
    /// # Errors
    ///
    /// Stops at, and returns, the first [`PassError`].
    pub fn run(&mut self, ir: &mut ElasticIr<T>) -> Result<Vec<PassReport>, PassError> {
        self.passes.iter_mut().map(|p| p.run(ir)).collect()
    }
}

/// Which MEB nodes a [`MebSubstitution`] rewrites.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MebTarget {
    /// Every MEB node.
    All,
    /// Only policy-inserted MEBs (`auto: true`) — designer-placed
    /// buffers keep their explicit microarchitecture.
    Auto,
    /// The single MEB with this instance name.
    Named(String),
}

/// Rewrites MEB microarchitectures (full ↔ reduced ↔ FIFO ablation) per
/// node or globally.
///
/// This pass is how buffer choice flows from a [`SynthConfig`](crate::SynthConfig) into the netlist: the dataflow lowering emits
/// every auto-inserted buffer with a placeholder kind, and
/// [`MebSubstitution::auto`] retargets them in one sweep — no per-call-site
/// buffer-kind plumbing.
pub struct MebSubstitution {
    target: MebTarget,
    kind: MebKind,
    arbiter: Option<ArbiterKind>,
}

impl MebSubstitution {
    /// Rewrite every MEB to `kind`.
    pub fn all(kind: MebKind) -> Self {
        Self {
            target: MebTarget::All,
            kind,
            arbiter: None,
        }
    }

    /// Rewrite only policy-inserted MEBs to `kind`.
    pub fn auto(kind: MebKind) -> Self {
        Self {
            target: MebTarget::Auto,
            kind,
            arbiter: None,
        }
    }

    /// Rewrite the one MEB named `name` to `kind`.
    pub fn named(name: impl Into<String>, kind: MebKind) -> Self {
        Self {
            target: MebTarget::Named(name.into()),
            kind,
            arbiter: None,
        }
    }

    /// Also rewrite the targeted MEBs' arbitration policy.
    pub fn with_arbiter(mut self, arbiter: ArbiterKind) -> Self {
        self.arbiter = Some(arbiter);
        self
    }
}

impl<T: Token> Pass<T> for MebSubstitution {
    fn name(&self) -> &'static str {
        "meb-substitution"
    }

    fn run(&mut self, ir: &mut ElasticIr<T>) -> Result<PassReport, PassError> {
        let ids: Vec<IrNodeId> = match &self.target {
            MebTarget::Named(name) => {
                let id = ir
                    .node_named(name)
                    .ok_or_else(|| PassError::NoSuchNode { node: name.clone() })?;
                if !matches!(ir.node(id).tag(), IrNodeTag::Meb(_)) {
                    return Err(PassError::NotAMeb { node: name.clone() });
                }
                vec![id]
            }
            _ => (0..ir.node_count()).map(crate::ir::node_id).collect(),
        };
        let mut changed = 0;
        let mut checked = 0;
        let mut deltas = Vec::new();
        for id in ids {
            checked += 1;
            // Resolved before the mutable borrow: the delta records the
            // thread count and width the cost model will re-derive at.
            let threads = ir.node_threads(id);
            let width = ir.node_width(id);
            let name = ir.node(id).name().to_string();
            if let IrNodeKind::Meb {
                kind,
                arbiter,
                auto,
                ..
            } = ir.node_mut(id).kind_mut()
            {
                if matches!(self.target, MebTarget::Auto) && !*auto {
                    continue;
                }
                if *kind != self.kind {
                    deltas.push(PassDelta::Resized {
                        node: name,
                        from: *kind,
                        to: self.kind,
                        threads,
                        width,
                    });
                    *kind = self.kind;
                    changed += 1;
                }
                if let Some(a) = self.arbiter {
                    if *arbiter != a {
                        // Arbitration policy does not move the LE count
                        // (the arbiter row depends on S only), so the
                        // rewrite counts as a change but emits no
                        // cost-relevant delta.
                        *arbiter = a;
                        changed += 1;
                    }
                }
            }
        }
        Ok(PassReport::new(<Self as Pass<T>>::name(self), changed, checked).with_deltas(deltas))
    }
}

/// Lints channel wiring and per-node protocol invariants:
///
/// * every channel has exactly one driver and one reader;
/// * all ports of a node agree on the thread count (an elastic circuit
///   never changes `S` mid-channel);
/// * single-thread EBs sit on 1-thread channels only;
/// * primitive arities hold (fork 1→N, join N→1, branch 1→2, …).
///   [`IrNodeKind::Custom`] nodes are exempt from the arity check.
pub struct ProtocolLint;

impl<T: Token> Pass<T> for ProtocolLint {
    fn name(&self) -> &'static str {
        "protocol-lint"
    }

    fn run(&mut self, ir: &mut ElasticIr<T>) -> Result<PassReport, PassError> {
        let n_ch = ir.channel_count();
        let mut drivers: Vec<Vec<String>> = vec![Vec::new(); n_ch];
        let mut readers: Vec<Vec<String>> = vec![Vec::new(); n_ch];
        for node in ir.nodes() {
            for ch in node.outputs() {
                drivers[ch.index()].push(node.name().to_string());
            }
            for ch in node.inputs() {
                readers[ch.index()].push(node.name().to_string());
            }
        }
        for (i, spec) in ir.channels().enumerate() {
            match drivers[i].len() {
                0 => {
                    return Err(PassError::NoDriver {
                        channel: spec.name.clone(),
                    })
                }
                1 => {}
                _ => {
                    return Err(PassError::MultipleDrivers {
                        channel: spec.name.clone(),
                        drivers: drivers[i].clone(),
                    })
                }
            }
            match readers[i].len() {
                0 => {
                    return Err(PassError::NoReader {
                        channel: spec.name.clone(),
                    })
                }
                1 => {}
                _ => {
                    return Err(PassError::MultipleReaders {
                        channel: spec.name.clone(),
                        readers: readers[i].clone(),
                    })
                }
            }
        }

        for node in ir.nodes() {
            let ports: Vec<_> = node
                .inputs()
                .iter()
                .chain(node.outputs())
                .copied()
                .collect();
            if let Some(&first) = ports.first() {
                let expected = if node.tag() == IrNodeTag::Eb {
                    1
                } else {
                    ir.channel_info(first).threads
                };
                for &ch in &ports {
                    let got = ir.channel_info(ch).threads;
                    if got != expected {
                        return Err(PassError::ThreadMismatch {
                            node: node.name().to_string(),
                            channel: ir.channel_info(ch).name.clone(),
                            expected,
                            got,
                        });
                    }
                }
            }
            let (ni, no) = (node.inputs().len(), node.outputs().len());
            let ok = match node.tag() {
                IrNodeTag::Source => ni == 0 && no == 1,
                IrNodeTag::Sink => ni == 1 && no == 0,
                IrNodeTag::Eb
                | IrNodeTag::Meb(_)
                | IrNodeTag::Barrier
                | IrNodeTag::VarLatency
                | IrNodeTag::Transform => ni == 1 && no == 1,
                IrNodeTag::Fork => ni == 1 && no >= 2,
                IrNodeTag::Join | IrNodeTag::Merge => ni >= 2 && no == 1,
                IrNodeTag::Branch => ni == 1 && no == 2,
                IrNodeTag::Custom { .. } => true,
            };
            if !ok {
                return Err(PassError::BadArity {
                    node: node.name().to_string(),
                    inputs: ni,
                    outputs: no,
                });
            }
        }
        Ok(PassReport::new(
            <Self as Pass<T>>::name(self),
            0,
            ir.node_count() + n_ch,
        ))
    }
}

/// Lints the EB/MEB cycle cut (paper Fig. 3): every structural cycle of
/// the netlist must pass through at least one node that registers its
/// handshake ([`IrNodeTag::cuts_cycles`]). This is the static,
/// pre-elaboration version of the rank scheduler's Tarjan SCC check —
/// the same defect, but reported as a typed error naming the cycle
/// before any component is constructed.
pub struct CycleCoverLint;

impl<T: Token> Pass<T> for CycleCoverLint {
    fn name(&self) -> &'static str {
        "cycle-cover-lint"
    }

    fn run(&mut self, ir: &mut ElasticIr<T>) -> Result<PassReport, PassError> {
        let n = ir.node_count();
        // Adjacency over non-cutting nodes only: an edge u -> v for every
        // channel driven by u and read by v where neither registers the
        // handshake. Any cycle that survives this filtering is uncovered.
        let mut driver: Vec<Option<usize>> = vec![None; ir.channel_count()];
        for (i, node) in ir.nodes().enumerate() {
            for ch in node.outputs() {
                driver[ch.index()].get_or_insert(i);
            }
        }
        let cuts: Vec<bool> = ir.nodes().map(|n| n.tag().cuts_cycles()).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (v, node) in ir.nodes().enumerate() {
            if cuts[v] {
                continue;
            }
            for ch in node.inputs() {
                if let Some(u) = driver[ch.index()] {
                    if !cuts[u] {
                        adj[u].push(v);
                    }
                }
            }
        }

        // Iterative DFS with gray/black colouring; a gray->gray edge is a
        // back edge, and the gray stack segment from its head is the cycle.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; n];
        let mut path: Vec<usize> = Vec::new();
        for root in 0..n {
            if color[root] != WHITE || cuts[root] {
                continue;
            }
            // (node, next child index) frames.
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            color[root] = GRAY;
            path.push(root);
            while let Some(&mut (u, ref mut next)) = stack.last_mut() {
                if let Some(&v) = adj[u].get(*next) {
                    *next += 1;
                    match color[v] {
                        WHITE => {
                            color[v] = GRAY;
                            path.push(v);
                            stack.push((v, 0));
                        }
                        GRAY => {
                            let start = path.iter().position(|&p| p == v).unwrap_or(0);
                            let mut nodes: Vec<String> = path[start..]
                                .iter()
                                .map(|&p| ir.node(crate::ir::node_id(p)).name().to_string())
                                .collect();
                            nodes.push(nodes[0].clone()); // close the loop visually
                            return Err(PassError::UnbufferedCycle { nodes });
                        }
                        _ => {}
                    }
                } else {
                    color[u] = BLACK;
                    path.pop();
                    stack.pop();
                }
            }
        }
        Ok(PassReport::new(<Self as Pass<T>>::name(self), 0, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrNodeKind;
    use elastic_sim::ReadyPolicy;

    fn meb(auto: bool) -> IrNodeKind<u64> {
        IrNodeKind::Meb {
            kind: MebKind::Reduced,
            arbiter: ArbiterKind::RoundRobin,
            initial: Vec::new(),
            auto,
        }
    }

    /// src -> merge -> transform -> [meb?] -> branch -> (sink, back to merge)
    fn looped_ir(with_buffer: bool) -> ElasticIr<u64> {
        let mut ir = ElasticIr::<u64>::new();
        let fresh = ir.channel("fresh", 2);
        let head = ir.channel("head", 2);
        let stepped = ir.channel("stepped", 2);
        let buffered = if with_buffer {
            ir.channel("buffered", 2)
        } else {
            stepped
        };
        let done = ir.channel("done", 2);
        let back = ir.channel("back", 2);
        ir.add("src", IrNodeKind::Source, vec![], vec![fresh]);
        ir.add("entry", IrNodeKind::Merge, vec![fresh, back], vec![head]);
        ir.add(
            "step",
            IrNodeKind::Transform {
                f: Box::new(|&v| v + 1),
            },
            vec![head],
            vec![stepped],
        );
        if with_buffer {
            ir.add("loop_buf", meb(true), vec![stepped], vec![buffered]);
        }
        ir.add(
            "exit",
            IrNodeKind::Branch {
                cond: Box::new(|&v| v > 3),
            },
            vec![buffered],
            vec![done, back],
        );
        ir.add(
            "out",
            IrNodeKind::Sink {
                capture: true,
                policy: ReadyPolicy::Always,
            },
            vec![done],
            vec![],
        );
        ir
    }

    #[test]
    fn cycle_cover_accepts_buffered_loop() {
        let mut ir = looped_ir(true);
        let report = Pass::<u64>::run(&mut CycleCoverLint, &mut ir).expect("covered");
        assert_eq!(report.pass, "cycle-cover-lint");
    }

    #[test]
    fn cycle_cover_rejects_unbuffered_loop_naming_the_cycle() {
        let mut ir = looped_ir(false);
        let err = Pass::<u64>::run(&mut CycleCoverLint, &mut ir).expect_err("uncovered");
        let PassError::UnbufferedCycle { nodes } = &err else {
            panic!("wrong error: {err:?}");
        };
        assert!(nodes.iter().any(|n| n == "entry"), "{nodes:?}");
        assert!(nodes.iter().any(|n| n == "step"), "{nodes:?}");
        assert!(nodes.iter().any(|n| n == "exit"), "{nodes:?}");
        let msg = err.to_string();
        assert!(msg.contains("combinational loop"), "{msg}");
    }

    #[test]
    fn protocol_lint_accepts_wellformed_ir() {
        let mut ir = looped_ir(true);
        Pass::<u64>::run(&mut ProtocolLint, &mut ir).expect("clean");
    }

    #[test]
    fn protocol_lint_rejects_dangling_channel() {
        let mut ir = looped_ir(true);
        ir.channel("orphan", 2);
        let err = Pass::<u64>::run(&mut ProtocolLint, &mut ir).expect_err("dangling");
        assert!(matches!(err, PassError::NoDriver { ref channel } if channel == "orphan"));
    }

    #[test]
    fn protocol_lint_rejects_thread_mismatch() {
        let mut ir = ElasticIr::<u64>::new();
        let a = ir.channel("a", 2);
        let b = ir.channel("b", 3);
        ir.add("src", IrNodeKind::Source, vec![], vec![a]);
        ir.add("buf", meb(false), vec![a], vec![b]);
        ir.add(
            "snk",
            IrNodeKind::Sink {
                capture: false,
                policy: ReadyPolicy::Always,
            },
            vec![b],
            vec![],
        );
        let err = Pass::<u64>::run(&mut ProtocolLint, &mut ir).expect_err("mismatch");
        assert!(
            matches!(
                err,
                PassError::ThreadMismatch {
                    ref node,
                    expected: 2,
                    got: 3,
                    ..
                } if node == "buf"
            ),
            "{err:?}"
        );
    }

    #[test]
    fn protocol_lint_rejects_bad_arity() {
        let mut ir = ElasticIr::<u64>::new();
        let a = ir.channel("a", 2);
        let b = ir.channel("b", 2);
        ir.add("src", IrNodeKind::Source, vec![], vec![a]);
        // A "fork" with a single output is ill-formed.
        ir.add(
            "fk",
            IrNodeKind::Fork {
                mode: elastic_core::ForkMode::Eager,
                route: None,
            },
            vec![a],
            vec![b],
        );
        ir.add(
            "snk",
            IrNodeKind::Sink {
                capture: false,
                policy: ReadyPolicy::Always,
            },
            vec![b],
            vec![],
        );
        let err = Pass::<u64>::run(&mut ProtocolLint, &mut ir).expect_err("arity");
        assert!(matches!(err, PassError::BadArity { ref node, .. } if node == "fk"));
    }

    #[test]
    fn meb_substitution_targets_auto_buffers_only() {
        let mut ir = looped_ir(true);
        // Add a designer-placed (non-auto) MEB in series after the loop.
        let done = ir.node_named("out").map(|id| ir.node(id).inputs()[0]);
        let _ = done; // the sink keeps reading `done`; add a fresh tail instead
        let t1 = ir.channel("tail_in", 2);
        let t2 = ir.channel("tail_out", 2);
        ir.add("tsrc", IrNodeKind::Source, vec![], vec![t1]);
        ir.add("manual_buf", meb(false), vec![t1], vec![t2]);
        ir.add(
            "tsnk",
            IrNodeKind::Sink {
                capture: false,
                policy: ReadyPolicy::Always,
            },
            vec![t2],
            vec![],
        );

        let mut pass = MebSubstitution::auto(MebKind::Full);
        let report = Pass::<u64>::run(&mut pass, &mut ir).expect("substitutes");
        assert_eq!(report.changed, 1);
        let auto_id = ir.node_named("loop_buf").unwrap();
        let manual_id = ir.node_named("manual_buf").unwrap();
        assert_eq!(ir.node(auto_id).tag(), IrNodeTag::Meb(MebKind::Full));
        assert_eq!(ir.node(manual_id).tag(), IrNodeTag::Meb(MebKind::Reduced));

        // `all` sweeps both; `named` retargets exactly one.
        let mut all = MebSubstitution::all(MebKind::Fifo { depth: 4 });
        Pass::<u64>::run(&mut all, &mut ir).expect("all");
        assert_eq!(
            ir.node(manual_id).tag(),
            IrNodeTag::Meb(MebKind::Fifo { depth: 4 })
        );
        let mut named = MebSubstitution::named("manual_buf", MebKind::Reduced);
        Pass::<u64>::run(&mut named, &mut ir).expect("named");
        assert_eq!(ir.node(manual_id).tag(), IrNodeTag::Meb(MebKind::Reduced));
        assert_eq!(
            ir.node(auto_id).tag(),
            IrNodeTag::Meb(MebKind::Fifo { depth: 4 })
        );
    }

    #[test]
    fn meb_substitution_rejects_bad_targets() {
        let mut ir = looped_ir(true);
        let mut missing = MebSubstitution::named("nope", MebKind::Full);
        assert!(matches!(
            Pass::<u64>::run(&mut missing, &mut ir),
            Err(PassError::NoSuchNode { .. })
        ));
        let mut not_meb = MebSubstitution::named("entry", MebKind::Full);
        assert!(matches!(
            Pass::<u64>::run(&mut not_meb, &mut ir),
            Err(PassError::NotAMeb { .. })
        ));
    }

    #[test]
    fn lint_suite_runs_both_lints() {
        let mut ir = looped_ir(true);
        let reports = PassManager::<u64>::lint_suite()
            .run(&mut ir)
            .expect("clean");
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].pass, "protocol-lint");
        assert_eq!(reports[1].pass, "cycle-cover-lint");
    }
}
