//! Fine-grained vs coarse-grained multithreading (paper, Sec. I: threads
//! may share the datapath "in a fine-grained manner by changing the
//! active thread on cycle-by-cycle basis or in a coarse-grained manner
//! that allows each thread to complete a larger set of computations
//! before moving to the next one", citing Ungerer et al.).
//!
//! Two measurements:
//!
//! 1. processor IPC across workloads — with stall-on-branch and variable
//!    latencies, fine-grained interleaving hides more bubbles;
//! 2. per-token latency through a MEB pipeline — coarse-grained quanta
//!    make *other* threads' tokens wait, fattening the latency tail.
//!
//! ```text
//! cargo run --release --bin fine_vs_coarse
//! ```

use elastic_core::{ArbiterKind, MebKind};
use elastic_proc::{programs, Cpu, CpuConfig};
use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source, Tagged};

fn processor_ipc(arbiter: ArbiterKind, source: &str) -> f64 {
    let mut config = CpuConfig::new(4);
    config.arbiter = arbiter;
    let mut cpu = Cpu::from_asm(config, source).expect("assembles");
    cpu.run_to_halt(2_000_000).expect("halts").ipc
}

/// One deep MEB stage (per-thread FIFOs) shared by a backlogged thread 0
/// and three latency-sensitive threads that submit one token every few
/// cycles, draining into a throttled consumer so the buffer stays
/// contended. A coarse quantum lets thread 0 hold the output in bursts,
/// so the sparse threads' tokens queue behind it.
fn pipeline_latency(arbiter: ArbiterKind) -> (f64, u64) {
    const THREADS: usize = 4;
    let mut b = CircuitBuilder::<Tagged>::new();
    let input = b.channel("in", THREADS);
    let output = b.channel("out", THREADS);
    let mut src = Source::new("src", input, THREADS);
    src.extend(0, (0..400).map(|i| Tagged::new(0, i, i)));
    for t in 1..THREADS {
        for i in 0..80u64 {
            src.push_at(t, 5 * i + t as u64, Tagged::new(t, i, i));
        }
    }
    b.add(src);
    b.add_boxed(
        MebKind::Fifo { depth: 8 }.build_with::<Tagged>("meb", input, output, THREADS, arbiter),
    );
    b.add(Sink::with_capture(
        "snk",
        output,
        THREADS,
        ReadyPolicy::Period {
            on: 2,
            off: 1,
            phase: 0,
        },
    ));
    let mut circuit = b.build().expect("latency circuit is well-formed");
    circuit.run(450).expect("runs clean");
    // Latency = delivery cycle − the token's scheduled release cycle (the
    // queueing happens while the quantum owner hogs the channel, i.e.
    // *before* the injection fire — so measure from release, not entry).
    let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
    let mut sparse: Vec<u64> = Vec::new();
    for t in 1..THREADS {
        for (cycle, tok) in snk.captured(t) {
            let released = 5 * tok.seq + t as u64;
            sparse.push(cycle - released);
        }
    }
    let count = sparse.len() as f64;
    let mean = sparse.iter().sum::<u64>() as f64 / count;
    sparse.sort_unstable();
    let p95 = sparse[((sparse.len() - 1) as f64 * 0.95).round() as usize];
    (mean, p95)
}

fn main() {
    let policies = [
        ArbiterKind::RoundRobin,
        ArbiterKind::Coarse { quantum: 2 },
        ArbiterKind::Coarse { quantum: 4 },
        ArbiterKind::Coarse { quantum: 16 },
    ];

    println!("1. Processor IPC, 4 threads (higher is better)\n");
    print!("{:<14}", "policy");
    let workloads = ["sum_loop", "dot_product", "sieve"];
    for w in workloads {
        print!(" {w:>12}");
    }
    println!();
    println!("{}", "-".repeat(14 + 13 * workloads.len()));
    for policy in policies {
        print!("{:<14}", policy.to_string());
        for name in workloads {
            let source = programs::all()
                .into_iter()
                .find(|(n, _, _)| *n == name)
                .map(|(_, s, _)| s)
                .expect("workload exists");
            print!(" {:>12.3}", processor_ipc(policy, source));
        }
        println!();
    }

    println!(
        "\n2. Latency of sparse threads sharing one contended deep-FIFO MEB with a\n   backlogged thread (lower is better)\n"
    );
    println!("{:<14} {:>10} {:>10}", "policy", "mean", "p95");
    println!("{}", "-".repeat(36));
    for policy in policies {
        let (mean, p95) = pipeline_latency(policy);
        println!("{:<14} {:>10.1} {:>10}", policy.to_string(), mean, p95);
    }
    println!(
        "\nwith dependent/branchy code, a thread that owns the datapath for a long\n\
         quantum stalls on its own hazards while other threads queue behind it —\n\
         the elastic MEBs make fine-grained interleaving free, which is why the\n\
         paper's examples arbitrate cycle by cycle."
    );
}
