//! Property coverage for the transforming pass pipeline (`synth::opt`):
//! on randomly generated topologies, every transforming pass —
//! depth sizing, slack matching, retiming — must preserve the
//! exhaustive-oracle capture digest (per-thread token streams through a
//! backpressured capturing sink), and every *successful* retime must
//! leave an IR that still passes the full lint suite and still
//! elaborates. The passes may refuse (illegal retime, unknown node) —
//! refusal must leave the IR untouched, which the digest check catches.

use mt_elastic::core::{ArbiterKind, ForkMode, MebKind};
use mt_elastic::sim::{
    ChannelFeedback, FeedbackProfile, ReadyPolicy, Sink, Source, OCCUPANCY_BUCKETS,
};
use mt_elastic::synth::{
    ElasticIr, IrNodeKind, MebDepthSizing, Pass, PassError, PassManager, RetimeDirection, Retiming,
    SlackMatching,
};
use proptest::prelude::*;

/// One randomly drawn pipeline shape: `src -> [xf{i} -> buf{i}]* ->
/// (optional fork/join diamond) -> snk`, rebuilt identically on every
/// call (the IR holds boxed closures and cannot be cloned).
#[derive(Clone, Debug)]
struct Topo {
    threads: usize,
    stage_kinds: Vec<MebKind>,
    diamond: bool,
    seed: u64,
}

fn build(t: &Topo) -> ElasticIr<u64> {
    let mut ir = ElasticIr::<u64>::new();
    let mut cur = ir.channel_with_width("c0", t.threads, 32);
    ir.add("src", IrNodeKind::Source, vec![], vec![cur]);
    for (i, kind) in t.stage_kinds.iter().enumerate() {
        let mid = ir.channel_with_width(format!("t{i}"), t.threads, 32);
        let out = ir.channel_with_width(format!("c{}", i + 1), t.threads, 32);
        let k = i as u64;
        ir.add(
            format!("xf{i}"),
            IrNodeKind::Transform {
                f: Box::new(move |&v: &u64| v.wrapping_mul(2 * k + 3).wrapping_add(k)),
            },
            vec![cur],
            vec![mid],
        );
        ir.add(
            format!("buf{i}"),
            IrNodeKind::Meb {
                kind: *kind,
                arbiter: ArbiterKind::RoundRobin,
                initial: Vec::new(),
                auto: true,
            },
            vec![mid],
            vec![out],
        );
        cur = out;
    }
    if t.diamond {
        let deep = ir.channel_with_width("deep", t.threads, 32);
        let shallow = ir.channel_with_width("shallow", t.threads, 32);
        let stepped = ir.channel_with_width("stepped", t.threads, 32);
        let buffered = ir.channel_with_width("buffered", t.threads, 32);
        let joined = ir.channel_with_width("joined", t.threads, 32);
        ir.add(
            "fork",
            IrNodeKind::Fork {
                mode: ForkMode::Eager,
                route: None,
            },
            vec![cur],
            vec![deep, shallow],
        );
        ir.add(
            "double",
            IrNodeKind::Transform {
                f: Box::new(|&v: &u64| v.rotate_left(7)),
            },
            vec![deep],
            vec![stepped],
        );
        ir.add(
            "deep_buf",
            IrNodeKind::Meb {
                kind: MebKind::Fifo { depth: 2 },
                arbiter: ArbiterKind::RoundRobin,
                initial: Vec::new(),
                auto: true,
            },
            vec![stepped],
            vec![buffered],
        );
        ir.add(
            "join",
            IrNodeKind::Join {
                combine: Box::new(|toks: &[&u64]| toks[0].wrapping_add(*toks[1])),
            },
            vec![buffered, shallow],
            vec![joined],
        );
        cur = joined;
    }
    ir.add(
        "snk",
        IrNodeKind::Sink {
            capture: true,
            // Deterministic backpressure so buffering actually matters.
            policy: ReadyPolicy::Period {
                on: 1,
                off: 1,
                phase: 0,
            },
        },
        vec![cur],
        vec![],
    );
    ir
}

const TOKENS_PER_THREAD: usize = 6;

/// The exhaustive-oracle digest: per-thread captured token *values* (not
/// cycle stamps — a pass is allowed to change latency, never data).
fn oracle_digest(t: &Topo) -> String {
    let mut el = build(t).elaborate().expect("topology elaborates");
    let c = &mut el.circuit;
    {
        let src = c.get_mut::<Source<u64>>("src").expect("source exists");
        for th in 0..t.threads {
            for i in 0..TOKENS_PER_THREAD {
                src.push(
                    th,
                    t.seed ^ (th as u64 * 17 + i as u64).wrapping_mul(0x9e37),
                );
            }
        }
    }
    for _ in 0..600 {
        c.step().expect("settle converges");
    }
    let snk = c.get::<Sink<u64>>("snk").expect("sink exists");
    let streams: Vec<Vec<u64>> = (0..t.threads)
        .map(|th| snk.captured(th).iter().map(|(_, v)| *v).collect())
        .collect();
    for (th, s) in streams.iter().enumerate() {
        assert_eq!(
            s.len(),
            TOKENS_PER_THREAD,
            "thread {th} did not drain within the cycle budget"
        );
    }
    format!("{streams:x?}")
}

/// Digest after applying `pass` to a fresh build; pass refusal
/// (illegal retime, unmeasured channel) must leave the IR untouched.
fn digest_after(t: &Topo, pass: &mut dyn Pass<u64>) -> String {
    let mut ir = build(t);
    match pass.run(&mut ir) {
        Ok(_) | Err(PassError::IllegalRetiming { .. }) | Err(PassError::NoSuchNode { .. }) => {}
        Err(e) => panic!("pass failed structurally: {e}"),
    }
    let mut el = ir.elaborate().expect("transformed IR elaborates");
    let c = &mut el.circuit;
    {
        let src = c.get_mut::<Source<u64>>("src").expect("source exists");
        for th in 0..t.threads {
            for i in 0..TOKENS_PER_THREAD {
                src.push(
                    th,
                    t.seed ^ (th as u64 * 17 + i as u64).wrapping_mul(0x9e37),
                );
            }
        }
    }
    for _ in 0..600 {
        c.step().expect("settle converges");
    }
    let snk = c.get::<Sink<u64>>("snk").expect("sink exists");
    let streams: Vec<Vec<u64>> = (0..t.threads)
        .map(|th| snk.captured(th).iter().map(|(_, v)| *v).collect())
        .collect();
    format!("{streams:x?}")
}

fn meb_kind(choice: u8) -> MebKind {
    match choice % 5 {
        0 => MebKind::Full,
        1 => MebKind::Reduced,
        n => MebKind::Fifo {
            depth: n as usize - 1, // 1..=3
        },
    }
}

fn topo_strategy() -> impl Strategy<Value = Topo> {
    (
        1usize..=3,
        prop::collection::vec(0u8..5, 1..=3),
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(|(threads, kinds, diamond, seed)| Topo {
            threads,
            stage_kinds: kinds.into_iter().map(meb_kind).collect(),
            diamond,
            seed,
        })
}

/// A synthetic profile that claims the given channel saw backpressure
/// streaks of length `len` — the input MebDepthSizing resizes from.
fn profile(channel: &str, len: usize) -> FeedbackProfile {
    let mut hist = [0u64; OCCUPANCY_BUCKETS];
    if len > 0 {
        hist[(len - 1).min(OCCUPANCY_BUCKETS - 1)] = 7;
    }
    FeedbackProfile {
        cycles: 600,
        channels: vec![ChannelFeedback {
            name: channel.to_string(),
            threads: 2,
            transfers: 64,
            stall_cycles: (len * 7) as u64,
            utilization: 0.5,
            stall_rate: 0.1,
            occupancy_hist: hist,
        }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Depth sizing driven by an arbitrary measured streak length never
    /// changes what the circuit computes.
    #[test]
    fn depth_sizing_preserves_the_oracle_digest(
        topo in topo_strategy(),
        stage in 0usize..3,
        streak in 0usize..10,
        convert in any::<bool>(),
    ) {
        let base = oracle_digest(&topo);
        let stage = stage % topo.stage_kinds.len();
        let mut pass = MebDepthSizing::new(profile(&format!("t{stage}"), streak));
        if convert {
            pass = pass.converting();
        }
        prop_assert_eq!(digest_after(&topo, &mut pass), base);
    }

    /// Slack matching (any buffer kind) never changes what the circuit
    /// computes — on diamonds it inserts, on chains it is a no-op.
    #[test]
    fn slack_matching_preserves_the_oracle_digest(
        topo in topo_strategy(),
        kind in 0u8..5,
    ) {
        let base = oracle_digest(&topo);
        let mut pass = SlackMatching::new(meb_kind(kind));
        prop_assert_eq!(digest_after(&topo, &mut pass), base);
    }

    /// Retiming — legal or refused — never changes what the circuit
    /// computes, and a *successful* retime leaves an IR that still
    /// passes the whole lint suite and still elaborates.
    #[test]
    fn retiming_preserves_digest_and_legality(
        topo in topo_strategy(),
        stage in 0usize..3,
        forward in any::<bool>(),
    ) {
        let base = oracle_digest(&topo);
        let stage = stage % topo.stage_kinds.len();
        let dir = if forward {
            RetimeDirection::Forward
        } else {
            RetimeDirection::Backward
        };
        let mut pass = Retiming::new(format!("buf{stage}"), dir);
        prop_assert_eq!(digest_after(&topo, &mut pass), base);

        // Re-run on a fresh build to observe the report, then check the
        // moved buffer still satisfies every lint and builds.
        let mut ir = build(&topo);
        if let Ok(report) = Pass::<u64>::run(&mut pass, &mut ir) {
            prop_assert_eq!(report.changed, 1);
            prop_assert_eq!(report.deltas.len(), 1);
            PassManager::lint_suite()
                .run(&mut ir)
                .expect("retimed IR passes the lint suite");
            ir.elaborate().expect("retimed IR elaborates");
        }
    }
}
