//! Property-based invariants of the elastic protocol: under arbitrary
//! thread counts, pipeline depths, MEB kinds and random stall patterns,
//! tokens are conserved, per-thread order is preserved, and the
//! protocol-checking kernel never reports a violation.

use mt_elastic::core::{ArbiterKind, MebKind, PipelineConfig, PipelineHarness};
use mt_elastic::sim::{run_sweep_on, EvalMode, ReadyPolicy, SimJob};
use proptest::prelude::*;

fn meb_kind_strategy() -> impl Strategy<Value = MebKind> {
    prop_oneof![
        Just(MebKind::Full),
        Just(MebKind::Reduced),
        (1usize..4).prop_map(|depth| MebKind::Fifo { depth }),
    ]
}

fn arbiter_strategy() -> impl Strategy<Value = ArbiterKind> {
    prop_oneof![
        Just(ArbiterKind::Fixed),
        Just(ArbiterKind::RoundRobin),
        Just(ArbiterKind::LeastRecent),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every injected token is eventually delivered exactly once, in
    /// per-thread injection order, through any MEB pipeline under any
    /// random sink behaviour — and the kernel's channel invariant,
    /// missing-data and combinational-loop checks stay silent.
    #[test]
    fn tokens_conserved_and_ordered(
        threads in 1usize..5,
        stages in 1usize..5,
        kind in meb_kind_strategy(),
        arbiter in arbiter_strategy(),
        tokens in 1u64..25,
        p_ready in 0.15f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut cfg = PipelineConfig::free_flowing(threads, stages, kind, tokens);
        cfg.arbiter = arbiter;
        for t in 0..threads {
            cfg.sink_policies[t] = ReadyPolicy::Random { p: p_ready, seed: seed ^ t as u64 };
        }
        let mut h = PipelineHarness::build(cfg);
        // Generous budget: worst case p_ready=0.15 needs ~tokens*threads/p.
        let budget = 400 + tokens * threads as u64 * 12 + stages as u64 * 20;
        let out = h.pipeline.output;
        let expected = tokens * threads as u64;
        let done = h.circuit
            .run_until(budget * 4, move |c| c.stats().total_transfers(out) >= expected);
        prop_assert!(matches!(done, Ok(true)), "protocol violation or timeout: {done:?}");

        // Conservation: everything injected was delivered.
        for t in 0..threads {
            let delivered: Vec<u64> =
                h.sink().captured(t).iter().map(|(_, tok)| tok.seq).collect();
            prop_assert_eq!(
                &delivered,
                &(0..tokens).collect::<Vec<_>>(),
                "thread {} lost/duplicated/reordered tokens", t
            );
        }
        // Nothing left inside the pipeline.
        prop_assert!(h.source().is_drained());
    }

    /// The event-driven dirty-set kernel is *observationally identical*
    /// to the exhaustive-sweep oracle: over random topologies, thread
    /// counts, MEB kinds and random sink stalls, both modes deliver the
    /// same tokens to the same threads at the same cycles, conserve every
    /// token, and agree on all transfer counts.
    #[test]
    fn dirty_set_kernel_matches_exhaustive_oracle(
        threads in 1usize..5,
        stages in 1usize..5,
        kind in meb_kind_strategy(),
        arbiter in arbiter_strategy(),
        tokens in 1u64..20,
        p_ready in 0.2f64..1.0,
        seed in any::<u64>(),
    ) {
        let build = |mode: EvalMode| {
            let mut cfg = PipelineConfig::free_flowing(threads, stages, kind, tokens)
                .with_eval_mode(mode);
            cfg.arbiter = arbiter;
            for t in 0..threads {
                cfg.sink_policies[t] =
                    ReadyPolicy::Random { p: p_ready, seed: seed ^ t as u64 };
            }
            PipelineHarness::build(cfg)
        };
        let cycles = 200 + tokens * threads as u64 * 12 + stages as u64 * 20;

        let mut oracle = build(EvalMode::Exhaustive);
        let oracle_run = oracle.circuit.run(cycles);
        prop_assert!(oracle_run.is_ok(), "oracle violated the protocol: {oracle_run:?}");

        let mut fast = build(EvalMode::EventDriven);
        let fast_run = fast.circuit.run(cycles);
        prop_assert!(fast_run.is_ok(), "dirty-set kernel violated the protocol: {fast_run:?}");

        // Bit-identical per-thread deliveries, including arrival cycles.
        for t in 0..threads {
            prop_assert_eq!(
                oracle.sink().captured(t),
                fast.sink().captured(t),
                "thread {} delivery diverged between kernels", t
            );
        }
        // Same transfer counts on every channel of the pipeline.
        for (i, &ch) in oracle.pipeline.channels.iter().enumerate() {
            prop_assert_eq!(
                oracle.circuit.stats().total_transfers(ch),
                fast.circuit.stats().total_transfers(ch),
                "channel {} transfer count diverged", i
            );
        }
        // Conservation in both: injected == delivered + in flight, and
        // both kernels agree on the split.
        let injected: u64 = (0..threads).map(|t| oracle.source().injected(t)).sum();
        let injected_fast: u64 = (0..threads).map(|t| fast.source().injected(t)).sum();
        prop_assert_eq!(injected, injected_fast);
        prop_assert_eq!(oracle.sink().consumed_total(), fast.sink().consumed_total());
    }

    /// The oracle-equivalence property survives the parallel sweep
    /// harness: running the EventDriven/Exhaustive pair as concurrent
    /// `run_sweep_on` jobs (real worker threads) yields exactly the
    /// per-thread deliveries that the in-thread serial runs produce —
    /// i.e. simulations are deterministic under concurrent execution.
    #[test]
    fn oracle_equivalence_holds_through_parallel_sweep(
        threads in 1usize..4,
        stages in 1usize..4,
        kind in meb_kind_strategy(),
        tokens in 1u64..16,
        p_ready in 0.25f64..1.0,
        seed in any::<u64>(),
    ) {
        let digest = move |mode: EvalMode| -> Result<String, mt_elastic::sim::SimError> {
            let mut cfg = PipelineConfig::free_flowing(threads, stages, kind, tokens)
                .with_eval_mode(mode);
            for t in 0..threads {
                cfg.sink_policies[t] =
                    ReadyPolicy::Random { p: p_ready, seed: seed ^ t as u64 };
            }
            let mut h = PipelineHarness::build(cfg);
            let cycles = 200 + tokens * threads as u64 * 12 + stages as u64 * 20;
            h.circuit.run(cycles)?;
            let caps: Vec<Vec<(u64, u64)>> = (0..threads)
                .map(|t| h.sink().captured(t).iter().map(|(c, tok)| (*c, tok.seq)).collect())
                .collect();
            Ok(format!("{caps:?}"))
        };

        // Serial reference, computed on this thread.
        let serial_oracle = digest(EvalMode::Exhaustive);
        let serial_fast = digest(EvalMode::EventDriven);
        prop_assert!(serial_oracle.is_ok() && serial_fast.is_ok());

        // The same pair as concurrent sweep jobs on two workers.
        let jobs = vec![
            SimJob::new("oracle", move || digest(EvalMode::Exhaustive)),
            SimJob::new("fast", move || digest(EvalMode::EventDriven)),
        ];
        let results = run_sweep_on(jobs, 2).unwrap_all();
        prop_assert_eq!(&results[0], serial_oracle.as_ref().unwrap());
        prop_assert_eq!(&results[1], serial_fast.as_ref().unwrap());
        prop_assert_eq!(&results[0], &results[1], "kernels diverged under the sweep");
    }

    /// Occupancy never exceeds the architectural capacity of the chosen
    /// MEB kind (checked through the statistics: in-flight tokens =
    /// injected − delivered ≤ pipeline capacity).
    #[test]
    fn in_flight_never_exceeds_capacity(
        threads in 1usize..4,
        stages in 1usize..4,
        kind in meb_kind_strategy(),
        cut in 1u64..60,
    ) {
        let cfg = PipelineConfig::free_flowing(threads, stages, kind, 100);
        let mut h = PipelineHarness::build(cfg);
        h.circuit.run(cut).expect("runs clean");
        let injected: u64 = (0..threads).map(|t| h.source().injected(t)).sum();
        let delivered = h.sink().consumed_total();
        let capacity = (kind.slots(threads) * stages) as u64;
        prop_assert!(
            injected - delivered <= capacity,
            "in flight {} exceeds capacity {}",
            injected - delivered,
            capacity
        );
    }
}
