//! Automated synthesis demo (the paper's conclusion: the primitives
//! "enable the automated synthesis of complex algorithms to their
//! multithreaded elastic equivalent circuits"): describe Euclid's GCD as
//! a dataflow graph, elaborate it into an elastic circuit, and let four
//! hardware threads time-multiplex the single iterative datapath.
//!
//! ```text
//! cargo run --example gcd_synthesis
//! ```

use mt_elastic::synth::{DataflowBuilder, OpLatency, SynthConfig};

fn software_gcd(mut a: u64, mut b: u64) -> u64 {
    while a != b {
        if a > b {
            a -= b;
        } else {
            b -= a;
        }
    }
    a
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const THREADS: usize = 4;

    // Describe the algorithm as a dataflow graph:
    //
    //   pairs ──► merge ──► branch(a == b) ──► gcd (output)
    //               ▲            │ not equal
    //               └── step ◄───┘   (subtract smaller from larger)
    let mut g = DataflowBuilder::<(u64, u64)>::new(THREADS);
    let fresh = g.input("pairs");
    let looped = g.input("loop"); // placeholder, closed below
    let head = g.merge("entry", &[fresh, looped]);
    let (done, cont) = g.branch("done?", head, |&(a, b): &(u64, u64)| a == b);
    g.output("gcd", done);
    let step = g.op1("step", OpLatency::Fixed(1), cont, |&(a, b)| {
        if a > b {
            (a - b, b)
        } else {
            (a, b - a)
        }
    });
    g.loopback("loop", step)?;

    // Elaborate: merges/ops get reduced MEBs automatically, so the loop is
    // legal elastic hardware and inherently multithreaded.
    let mut s = g.elaborate(SynthConfig::default())?;
    println!(
        "synthesized components: {:?}\n",
        s.circuit.component_names()
    );

    let problems = [(1071u64, 462u64), (270, 192), (35, 64), (123456, 7890)];
    for (t, &(a, b)) in problems.iter().enumerate() {
        s.push("pairs", t, (a, b))?;
    }
    s.run_until_outputs("gcd", THREADS as u64, 100_000)?;

    println!("{:<18} {:>10} {:>10}", "problem", "circuit", "software");
    println!("{}", "-".repeat(40));
    for (t, &(a, b)) in problems.iter().enumerate() {
        let got = s.collected("gcd", t)[0].0;
        let expect = software_gcd(a, b);
        println!("gcd({a:>6}, {b:>5}) {got:>10} {expect:>10}");
        assert_eq!(got, expect);
    }
    println!(
        "\ncompleted in {} cycles — all four threads iterated concurrently through\n\
         ONE subtractor, ONE branch and ONE merge, scheduled by the MEB arbiters.",
        s.circuit.cycle()
    );
    Ok(())
}
