//! Automated synthesis demo (the paper's conclusion: the primitives
//! "enable the automated synthesis of complex algorithms to their
//! multithreaded elastic equivalent circuits"): describe Euclid's GCD as
//! a dataflow graph, lower it to the structural elastic IR, and let that
//! ONE description feed all three consumers — the Graphviz netlist, the
//! Table I cost model, and the simulated circuit that four hardware
//! threads time-multiplex.
//!
//! ```text
//! cargo run --example gcd_synthesis
//! ```

use mt_elastic::cost::Inventory;
use mt_elastic::synth::{DataflowBuilder, OpLatency, PassManager, SynthConfig};

fn software_gcd(mut a: u64, mut b: u64) -> u64 {
    while a != b {
        if a > b {
            a -= b;
        } else {
            b -= a;
        }
    }
    a
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const THREADS: usize = 4;

    // Describe the algorithm as a dataflow graph:
    //
    //   pairs ──► merge ──► branch(a == b) ──► gcd (output)
    //               ▲            │ not equal
    //               └── step ◄───┘   (subtract smaller from larger)
    let mut g = DataflowBuilder::<(u64, u64)>::new(THREADS);
    let fresh = g.input("pairs");
    let looped = g.input("loop"); // placeholder, closed below
    let head = g.merge("entry", &[fresh, looped]);
    let (done, cont) = g.branch("done?", head, |&(a, b): &(u64, u64)| a == b);
    g.output("gcd", done);
    let step = g.op1("step", OpLatency::Fixed(1), cont, |&(a, b)| {
        if a > b {
            (a - b, b)
        } else {
            (a, b - a)
        }
    });
    g.loopback("loop", step)?;

    // Stage 1 — lower to the structural IR: merges/ops get reduced MEBs
    // automatically, so the loop is legal elastic hardware and inherently
    // multithreaded. The IR is the single source of truth for everything
    // that follows.
    let mut synth_ir = g.build_ir(SynthConfig::default())?;

    // Consumer 1: static checks + the Graphviz netlist (no simulation).
    PassManager::lint_suite().run(&mut synth_ir.ir)?;
    println!(
        "netlist (render with `dot -Tsvg`):\n{}",
        synth_ir.ir.to_dot()
    );

    // Consumer 2: the structural cost model, from the same description.
    // Annotate the token width first — a (u64, u64) problem pair — so the
    // model can size the inserted MEBs' register banks.
    let every_channel: Vec<_> = synth_ir
        .ir
        .nodes()
        .flat_map(|n| n.inputs().iter().chain(n.outputs()).copied())
        .collect();
    for ch in every_channel {
        synth_ir.ir.set_width(ch, 128);
    }
    let inv = Inventory::from_ir(&synth_ir.ir);
    println!(
        "buffer inventory from the IR ({} LEs total):\n{}",
        inv.total_les(),
        inv.render()
    );

    // Consumer 3: the simulated circuit.
    let mut s = synth_ir.elaborate()?;
    println!(
        "synthesized components: {:?}\n",
        s.circuit.component_names()
    );

    let problems = [(1071u64, 462u64), (270, 192), (35, 64), (123456, 7890)];
    for (t, &(a, b)) in problems.iter().enumerate() {
        s.push("pairs", t, (a, b))?;
    }
    s.run_until_outputs("gcd", THREADS as u64, 100_000)?;

    println!("{:<18} {:>10} {:>10}", "problem", "circuit", "software");
    println!("{}", "-".repeat(40));
    for (t, &(a, b)) in problems.iter().enumerate() {
        let got = s.collected("gcd", t)[0].0;
        let expect = software_gcd(a, b);
        println!("gcd({a:>6}, {b:>5}) {got:>10} {expect:>10}");
        assert_eq!(got, expect);
    }
    println!(
        "\ncompleted in {} cycles — all four threads iterated concurrently through\n\
         ONE subtractor, ONE branch and ONE merge, scheduled by the MEB arbiters.",
        s.circuit.cycle()
    );
    Ok(())
}
