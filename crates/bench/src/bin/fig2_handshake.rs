//! Regenerates the paper's **Figure 2(b)**: the valid/ready handshake of
//! a single-thread elastic channel between two EBs, with intermittent
//! backpressure so all three protocol situations appear (transfer, idle,
//! stall).
//!
//! ```text
//! cargo run --release --bin fig2_handshake
//! ```

use elastic_core::ElasticBuffer;
use elastic_sim::{render_waveform, CircuitBuilder, ReadyPolicy, Sink, Source};

fn main() {
    let mut b = CircuitBuilder::<String>::new();
    let input = b.channel("in", 1);
    let mid = b.channel("link", 1);
    let output = b.channel("out", 1);
    let mut src = Source::new("src", input, 1);
    for (i, word) in ["word1", "word2", "word3"].iter().enumerate() {
        src.push_at(0, 2 * i as u64, word.to_string());
    }
    b.add(src);
    b.add(ElasticBuffer::new("eb0", input, mid));
    b.add(ElasticBuffer::new("eb1", mid, output));
    b.add(Sink::new(
        "snk",
        output,
        1,
        ReadyPolicy::Period {
            on: 2,
            off: 1,
            phase: 1,
        },
    ));
    let mut circuit = b.build().expect("fig2 circuit is well-formed");
    circuit.enable_trace();
    circuit.run(12).expect("fig2 runs clean");

    println!("Fig. 2(b) — elastic channel handshake between two EBs");
    println!("(valid ▔ high / ▁ low; ready shown where the transfer fires; data at fire)\n");
    print!(
        "{}",
        render_waveform(circuit.trace().expect("traced"), &[(mid, "link")], 0, 11)
    );
    println!(
        "transfers on `link`: {:?}",
        circuit
            .trace()
            .expect("traced")
            .transfers_on(mid)
            .iter()
            .map(|(c, _, l)| format!("{l}@{c}"))
            .collect::<Vec<_>>()
    );
}
