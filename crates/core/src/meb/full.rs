//! The *full* multithreaded elastic buffer: one 2-slot EB per thread
//! (paper, Fig. 4).
//!
//! For `S` threads the full MEB provides `2·S` storage slots — every
//! thread always has its private auxiliary slot, so an active thread keeps
//! 100 % throughput even when every other thread is blocked. The price is
//! that the storage is "effectively replicated per thread" (Sec. III),
//! which the reduced MEB eliminates.

use elastic_sim::{
    impl_as_any, ChannelId, CombPath, Component, EvalCtx, NetlistNodeKind, NextEvent, Ports,
    ProtocolError, SlotView, ThreadMask, TickCtx, Token,
};

use crate::arbiter::Arbiter;
use crate::select::SelectState;

/// A full MEB: per-thread 2-slot elastic buffers behind a shared arbiter
/// and output multiplexer.
///
/// # Examples
///
/// ```
/// use elastic_core::{ArbiterKind, FullMeb};
/// use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source, Tagged};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::<Tagged>::new();
/// let a = b.channel("in", 2);
/// let c = b.channel("out", 2);
/// let mut src = Source::new("src", a, 2);
/// src.push(0, Tagged::new(0, 0, 1));
/// src.push(1, Tagged::new(1, 0, 2));
/// b.add(src);
/// b.add(FullMeb::new("meb", a, c, 2, ArbiterKind::RoundRobin.build()));
/// b.add(Sink::new("snk", c, 2, ReadyPolicy::Always));
/// let mut circuit = b.build()?;
/// circuit.run(6)?;
/// assert_eq!(circuit.stats().total_transfers(c), 2);
/// # Ok(())
/// # }
/// ```
pub struct FullMeb<T: Token> {
    name: String,
    inp: ChannelId,
    out: ChannelId,
    threads: usize,
    /// Per-thread head register (`eb[i]` main slot).
    main: Vec<Option<T>>,
    /// Per-thread auxiliary register (`eb[i]` second slot).
    aux: Vec<Option<T>>,
    arbiter: Box<dyn Arbiter>,
    select: SelectState,
    /// Persistent "thread has data" mask, rebuilt in place each eval.
    has: ThreadMask,
}

impl<T: Token> FullMeb<T> {
    /// An empty full MEB for `threads` threads between `inp` and `out`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(
        name: impl Into<String>,
        inp: ChannelId,
        out: ChannelId,
        threads: usize,
        arbiter: Box<dyn Arbiter>,
    ) -> Self {
        assert!(threads > 0, "a MEB needs at least one thread");
        Self {
            name: name.into(),
            inp,
            out,
            threads,
            main: vec![None; threads],
            aux: vec![None; threads],
            arbiter,
            select: SelectState::new(),
            has: ThreadMask::new(threads),
        }
    }

    /// Pre-loads tokens before the first cycle (the dataflow "initial
    /// token on the back edge"), at most two per thread.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ExcessInitialTokens`] if a thread receives
    /// more than two initial tokens.
    ///
    /// # Panics
    ///
    /// Panics if a thread index is out of range.
    pub fn with_initial(
        mut self,
        tokens: impl IntoIterator<Item = (usize, T)>,
    ) -> Result<Self, ProtocolError> {
        for (t, tok) in tokens {
            if self.main[t].is_none() {
                self.main[t] = Some(tok);
            } else if self.aux[t].is_none() {
                self.aux[t] = Some(tok);
            } else {
                return Err(ProtocolError::ExcessInitialTokens {
                    thread: t,
                    capacity: 2,
                });
            }
        }
        Ok(self)
    }

    /// Items stored for `thread` (0–2).
    pub fn occupancy(&self, thread: usize) -> usize {
        usize::from(self.main[thread].is_some()) + usize::from(self.aux[thread].is_some())
    }

    /// Items stored across all threads.
    pub fn occupancy_total(&self) -> usize {
        (0..self.threads).map(|t| self.occupancy(t)).sum()
    }

    /// Total storage capacity: `2 · S`.
    pub fn capacity(&self) -> usize {
        2 * self.threads
    }
}

impl<T: Token> Component<T> for FullMeb<T> {
    fn netlist_kind(&self) -> NetlistNodeKind {
        NetlistNodeKind::Buffer
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new([self.inp], [self.out])
    }

    fn comb_paths(&self) -> Vec<CombPath> {
        // Upstream ready and the stored data are registered (the MEB cuts
        // every input→output path, like the EB); the only combinational
        // dependence is the arbiter reading ready(out) to select which
        // thread's valid(out) to assert — damped by the anti-swap guard.
        vec![CombPath::ReadyToValid {
            from: self.out,
            to: self.out,
            damped: true,
        }]
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, T>) {
        // Upstream ready: private per-thread capacity check (registered).
        for t in 0..self.threads {
            ctx.set_ready(self.inp, t, self.occupancy(t) < 2);
            self.has.set(t, self.main[t].is_some());
        }
        // Downstream valid: arbiter over threads with data.
        match self
            .select
            .select(ctx, self.out, self.arbiter.as_ref(), &self.has)
        {
            Some(t) => {
                let head = self.main[t]
                    .clone()
                    .expect("selected thread has a head item");
                ctx.drive_token(self.out, t, head);
            }
            None => ctx.drive_idle(self.out),
        }
    }

    fn tick(&mut self, ctx: &TickCtx<'_, T>) {
        if let Some((t, _)) = ctx.fired_any(self.out) {
            // Dequeue: aux shifts into main.
            self.main[t] = self.aux[t].take();
            self.arbiter.commit(t);
        }
        if let Some((t, data)) = ctx.fired_any(self.inp) {
            if self.main[t].is_none() {
                self.main[t] = Some(data.clone());
            } else {
                debug_assert!(self.aux[t].is_none(), "enqueue into full per-thread EB");
                self.aux[t] = Some(data.clone());
            }
        }
        self.select.on_tick(ctx, self.out);
    }

    fn slots(&self) -> Vec<SlotView> {
        let mut out = Vec::with_capacity(2 * self.threads);
        for t in 0..self.threads {
            let view = |name: String, item: &Option<T>| match item {
                Some(d) => SlotView::full(name, t, d.label()),
                None => SlotView::empty(name),
            };
            out.push(view(format!("main[{t}]"), &self.main[t]));
            out.push(view(format!("aux[{t}]"), &self.aux[t]));
        }
        out
    }

    fn next_event(&self, _now: u64) -> NextEvent {
        NextEvent::Idle
    }

    fn reset(&mut self) -> bool {
        self.main.iter_mut().for_each(|s| *s = None);
        self.aux.iter_mut().for_each(|s| *s = None);
        self.arbiter.reset();
        self.select.reset();
        self.has.clear();
        true
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::{ArbiterKind, RoundRobin};
    use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source, Tagged};

    fn tagged_stream(thread: usize, n: u64) -> Vec<Tagged> {
        (0..n).map(|i| Tagged::new(thread, i, i)).collect()
    }

    #[test]
    fn single_thread_full_meb_behaves_like_an_eb() {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 1);
        let c = b.channel("c", 1);
        let mut src = Source::new("src", a, 1);
        src.extend(0, 0..10u64);
        b.add(src);
        b.add(FullMeb::new("meb", a, c, 1, Box::new(RoundRobin::new())));
        b.add(Sink::with_capture("snk", c, 1, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.run(20).expect("clean");
        let snk: &Sink<u64> = circuit.get("snk").expect("sink");
        let outs: Vec<u64> = snk.captured(0).iter().map(|(_, t)| *t).collect();
        assert_eq!(outs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn blocked_thread_fills_only_its_private_slots() {
        // Thread 0 blocked at the sink: it accumulates exactly 2 items in
        // the MEB; thread 1 keeps flowing at full speed past it.
        let mut b = CircuitBuilder::<Tagged>::new();
        let a = b.channel("a", 2);
        let c = b.channel("c", 2);
        let mut src = Source::new("src", a, 2);
        src.extend(0, tagged_stream(0, 10));
        src.extend(1, tagged_stream(1, 10));
        b.add(src);
        b.add(FullMeb::new(
            "meb",
            a,
            c,
            2,
            ArbiterKind::RoundRobin.build(),
        ));
        let mut sink = Sink::with_capture("snk", c, 2, ReadyPolicy::Always);
        sink.set_policy(0, ReadyPolicy::Never);
        b.add(sink);
        let mut circuit = b.build().expect("valid");
        circuit.run(30).expect("clean");
        let meb: &FullMeb<Tagged> = circuit.get("meb").expect("meb");
        assert_eq!(meb.occupancy(0), 2, "blocked thread holds its two slots");
        let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
        assert_eq!(snk.consumed(0), 0);
        assert_eq!(snk.consumed(1), 10, "unblocked thread is unaffected");
    }

    #[test]
    fn two_active_threads_split_throughput_evenly() {
        let mut b = CircuitBuilder::<Tagged>::new();
        let a = b.channel("a", 2);
        let c = b.channel("c", 2);
        let mut src = Source::new("src", a, 2);
        src.extend(0, tagged_stream(0, 50));
        src.extend(1, tagged_stream(1, 50));
        b.add(src);
        b.add(FullMeb::new(
            "meb",
            a,
            c,
            2,
            ArbiterKind::RoundRobin.build(),
        ));
        b.add(Sink::new("snk", c, 2, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.run(40).expect("clean");
        // Sec. III-A: M = 2 active threads ⇒ each gets 1/M = 0.5.
        let thr0 = circuit.stats().throughput(c, 0);
        let thr1 = circuit.stats().throughput(c, 1);
        assert!((thr0 - 0.5).abs() < 0.08, "thr0 = {thr0}");
        assert!((thr1 - 0.5).abs() < 0.08, "thr1 = {thr1}");
    }

    #[test]
    fn per_thread_order_is_preserved_under_random_stalls() {
        let mut b = CircuitBuilder::<Tagged>::new();
        let a = b.channel("a", 3);
        let c = b.channel("c", 3);
        let mut src = Source::new("src", a, 3);
        for t in 0..3 {
            src.extend(t, tagged_stream(t, 20));
        }
        b.add(src);
        b.add(FullMeb::new(
            "meb",
            a,
            c,
            3,
            ArbiterKind::RoundRobin.build(),
        ));
        b.add(Sink::with_capture(
            "snk",
            c,
            3,
            ReadyPolicy::Random { p: 0.5, seed: 3 },
        ));
        let mut circuit = b.build().expect("valid");
        circuit.run(400).expect("clean");
        let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
        for t in 0..3 {
            let seqs: Vec<u64> = snk.captured(t).iter().map(|(_, tok)| tok.seq).collect();
            assert_eq!(seqs, (0..20).collect::<Vec<_>>(), "thread {t} out of order");
        }
    }

    #[test]
    fn capacity_reports_two_per_thread() {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 8);
        let c = b.channel("c", 8);
        let meb = FullMeb::<u64>::new("m", a, c, 8, ArbiterKind::Fixed.build());
        assert_eq!(meb.capacity(), 16);
        assert_eq!(meb.occupancy_total(), 0);
    }
}
