//! E-X3 support — the barrier primitive under stress: many phases,
//! randomized arrival skew, partial participation, and composition with
//! MEBs of both kinds.

use mt_elastic::core::{ArbiterKind, Barrier, BarrierState, MebKind};
use mt_elastic::sim::{Circuit, CircuitBuilder, ReadyPolicy, Sink, Source, Tagged};
use proptest::prelude::*;

fn barrier_circuit(
    threads: usize,
    kind: MebKind,
    arrivals: &[(usize, u64, u64)], // (thread, phase, release cycle)
) -> (Circuit<Tagged>, mt_elastic::sim::ChannelId) {
    let mut b = CircuitBuilder::<Tagged>::new();
    let x = b.channel("x", threads);
    let m = b.channel("m", threads);
    let y = b.channel("y", threads);
    let mut src = Source::new("src", x, threads);
    let mut sorted = arrivals.to_vec();
    sorted.sort_by_key(|&(t, phase, cycle)| (t, phase, cycle));
    for (t, phase, cycle) in sorted {
        src.push_at(t, cycle, Tagged::new(t, phase, cycle));
    }
    b.add(src);
    b.add_boxed(kind.build_with::<Tagged>("meb", x, m, threads, ArbiterKind::RoundRobin));
    b.add(Barrier::new("bar", m, y, threads));
    b.add(Sink::with_capture("snk", y, threads, ReadyPolicy::Always));
    (b.build().expect("barrier circuit is well-formed"), y)
}

/// Many phases in sequence: each phase's releases happen only after that
/// phase's last arrival, for both MEB kinds feeding the barrier.
#[test]
fn many_phases_release_in_order() {
    const THREADS: usize = 4;
    const PHASES: u64 = 12;
    for kind in [MebKind::Full, MebKind::Reduced] {
        let arrivals: Vec<(usize, u64, u64)> = (0..PHASES)
            .flat_map(|p| (0..THREADS).map(move |t| (t, p, p * 10 + ((t as u64 * 3) % 7))))
            .collect();
        let (mut circuit, y) = barrier_circuit(THREADS, kind, &arrivals);
        circuit.set_deadlock_watchdog(Some(200));
        circuit
            .run_until(PHASES * 40 + 200, |c| {
                c.stats().total_transfers(y) >= PHASES * THREADS as u64
            })
            .expect("all phases complete");
        let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
        for p in 0..PHASES {
            let last_arrival = p * 10 + 6;
            for t in 0..THREADS {
                let (cycle, _) = snk.captured(t)[p as usize];
                assert!(
                    cycle > last_arrival,
                    "{kind} phase {p} thread {t}: released at {cycle} before last arrival {last_arrival}"
                );
            }
        }
        let bar: &Barrier<Tagged> = circuit.get("bar").expect("barrier");
        assert_eq!(bar.releases(), PHASES);
    }
}

// The barrier keeps working with skewed per-phase arrival order.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_skew_never_leaks_or_deadlocks(
        threads in 2usize..5,
        phases in 1u64..6,
        skews in prop::collection::vec(0u64..12, 32),
    ) {
        let mut k = 0;
        let arrivals: Vec<(usize, u64, u64)> = (0..phases)
            .flat_map(|p| {
                (0..threads).map(|t| {
                    let skew = skews[k % skews.len()];
                    k += 1;
                    (t, p, p * 20 + skew)
                }).collect::<Vec<_>>()
            })
            .collect();
        let (mut circuit, y) = barrier_circuit(threads, MebKind::Reduced, &arrivals);
        circuit.set_deadlock_watchdog(Some(300));
        let expected = phases * threads as u64;
        let done = circuit.run_until(phases * 80 + 400, |c| {
            c.stats().total_transfers(y) >= expected
        });
        prop_assert!(matches!(done, Ok(true)), "{done:?}");

        // Per phase: all releases strictly after the phase's last arrival.
        let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
        for p in 0..phases {
            let last_arrival = arrivals
                .iter()
                .filter(|&&(_, phase, _)| phase == p)
                .map(|&(_, _, c)| c)
                .max()
                .expect("phase has arrivals");
            for t in 0..threads {
                let (cycle, tok) = &snk.captured(t)[p as usize];
                prop_assert_eq!(tok.seq, p, "thread {} phase order", t);
                prop_assert!(*cycle > last_arrival);
            }
        }
    }
}

/// A missing participant blocks everyone (barrier semantics), and the
/// blocked threads are in WAIT while the missing one stays IDLE.
#[test]
fn missing_participant_blocks_the_phase() {
    let arrivals: Vec<(usize, u64, u64)> = vec![(0, 0, 0), (1, 0, 2)]; // thread 2 never arrives
    let (mut circuit, y) = barrier_circuit(3, MebKind::Reduced, &arrivals);
    circuit.run(80).expect("runs clean");
    assert_eq!(circuit.stats().total_transfers(y), 0);
    let bar: &Barrier<Tagged> = circuit.get("bar").expect("barrier");
    assert_eq!(bar.thread_state(0), BarrierState::Wait);
    assert_eq!(bar.thread_state(1), BarrierState::Wait);
    assert_eq!(bar.thread_state(2), BarrierState::Idle);
    assert_eq!(bar.count(), 2);
}

/// Partial participation: non-participants stream through a barrier that
/// synchronizes only the masked threads.
#[test]
fn partial_participation_mixes_streams() {
    const THREADS: usize = 3;
    let mut b = CircuitBuilder::<Tagged>::new();
    let x = b.channel("x", THREADS);
    let y = b.channel("y", THREADS);
    let mut src = Source::new("src", x, THREADS);
    // Threads 0 and 1 participate (one token each, skewed); thread 2 just
    // streams 10 tokens.
    src.push_at(0, 0, Tagged::new(0, 0, 0));
    src.push_at(1, 15, Tagged::new(1, 0, 0));
    src.extend(2, (0..10).map(|i| Tagged::new(2, i, i)));
    b.add(src);
    b.add(Barrier::new("bar", x, y, THREADS).with_participants(vec![true, true, false]));
    b.add(Sink::with_capture("snk", y, THREADS, ReadyPolicy::Always));
    let mut circuit = b.build().expect("valid");
    circuit.run(40).expect("clean");
    let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
    assert_eq!(snk.consumed(2), 10, "bypass thread streams freely");
    assert_eq!(snk.consumed(0), 1);
    assert_eq!(snk.consumed(1), 1);
    assert!(snk.captured(0)[0].0 > 15, "thread 0 waited for thread 1");
}
