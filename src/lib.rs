//! # mt-elastic — multithreaded elastic systems (DATE 2014), in Rust
//!
//! A comprehensive reproduction of *"Hardware Primitives for the Synthesis
//! of Multithreaded Elastic Systems"* (Dimitrakopoulos, Seitanidis,
//! Psarras, Tsiouris, Mattheakis, Cortadella — DATE 2014). This facade
//! crate re-exports the workspace:
//!
//! * [`sim`] — the cycle-accurate synchronous simulation kernel
//!   (channels with per-thread valid/ready, components, settle loop,
//!   traces, statistics);
//! * [`core`] — the paper's primitives: elastic buffers, full/reduced
//!   multithreaded elastic buffers, M-Join/M-Fork/M-Branch/M-Merge,
//!   arbiters and the thread barrier;
//! * [`md5`] — the MD5 design example (RFC 1321 reference + elastic
//!   circuit with barrier-synchronized rounds);
//! * [`proc`] — the multithreaded elastic processor (DTU-RISC ISA,
//!   assembler, MEB pipeline);
//! * [`cost`] — the structural FPGA area/frequency model regenerating
//!   Table I;
//! * [`synth`] — dataflow graphs elaborated into multithreaded elastic
//!   circuits (the conclusion's "automated synthesis" flow).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured
//! results.
//!
//! # Quickstart
//!
//! ```
//! use mt_elastic::core::{MebKind, PipelineConfig, PipelineHarness};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two threads time-multiplexing a 2-stage reduced-MEB pipeline.
//! let cfg = PipelineConfig::free_flowing(2, 2, MebKind::Reduced, 20);
//! let mut h = PipelineHarness::build(cfg);
//! h.circuit.run(50)?;
//! assert_eq!(h.sink().consumed_total(), 40);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use elastic_core as core;
pub use elastic_cost as cost;
pub use elastic_md5 as md5;
pub use elastic_proc as proc;
pub use elastic_sim as sim;
pub use elastic_synth as synth;
