//! Tutorial: writing your own elastic component against the kernel's
//! contract (see `docs/kernel.md`).
//!
//! We build a **per-thread token decimator**: it forwards every `n`-th
//! token of each thread and silently consumes the rest — a component with
//! registered state (per-thread counters), pass-through handshakes and a
//! slot snapshot for the trace renderers. The rules it demonstrates:
//!
//! * total drive — every owned signal is driven on every `eval`;
//! * idempotence — `eval` reads registers and channel signals only;
//!   counters change in `tick`;
//! * registered decisions — whether a token is forwarded depends only on
//!   the counter value latched at the previous clock edge.
//!
//! ```text
//! cargo run --example custom_component
//! ```

use mt_elastic::sim::{
    impl_as_any, ChannelId, CircuitBuilder, Component, EvalCtx, Ports, ReadyPolicy, Sink, SlotView,
    Source, Tagged, TickCtx,
};

/// Forwards every `n`-th token per thread, consuming the others.
struct Decimator {
    name: String,
    inp: ChannelId,
    out: ChannelId,
    threads: usize,
    n: u64,
    /// Tokens seen so far, per thread (registered state).
    count: Vec<u64>,
}

impl Decimator {
    fn new(
        name: impl Into<String>,
        inp: ChannelId,
        out: ChannelId,
        threads: usize,
        n: u64,
    ) -> Self {
        assert!(n > 0, "decimation factor must be at least 1");
        Self {
            name: name.into(),
            inp,
            out,
            threads,
            n,
            count: vec![0; threads],
        }
    }

    /// Whether the *next* accepted token of `t` is forwarded.
    fn keeps(&self, t: usize) -> bool {
        self.count[t].is_multiple_of(self.n)
    }
}

impl Component<Tagged> for Decimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new([self.inp], [self.out])
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, Tagged>) {
        // Total drive: every thread's valid/ready decided every call.
        for t in 0..self.threads {
            let vin = ctx.valid(self.inp, t);
            if self.keeps(t) {
                // Forward: the token passes combinationally; input fires
                // exactly when the output fires.
                ctx.set_valid(self.out, t, vin);
                ctx.set_ready(self.inp, t, ctx.ready(self.out, t));
            } else {
                // Drop: consume unconditionally, emit nothing.
                ctx.set_valid(self.out, t, false);
                ctx.set_ready(self.inp, t, true);
            }
        }
        ctx.set_data(self.out, ctx.data(self.inp).cloned());
    }

    fn tick(&mut self, ctx: &TickCtx<'_, Tagged>) {
        if let Some((t, _)) = ctx.fired_any(self.inp) {
            self.count[t] += 1;
        }
    }

    fn slots(&self) -> Vec<SlotView> {
        (0..self.threads)
            .map(|t| SlotView::full(format!("count[{t}]"), t, self.count[t].to_string()))
            .collect()
    }

    impl_as_any!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const THREADS: usize = 2;
    let mut b = CircuitBuilder::<Tagged>::new();
    let input = b.channel("in", THREADS);
    let output = b.channel("out", THREADS);
    let mut src = Source::new("src", input, THREADS);
    for t in 0..THREADS {
        src.extend(t, (0..12).map(|i| Tagged::new(t, i, i)));
    }
    b.add(src);
    b.add(Decimator::new("dec", input, output, THREADS, 3));
    b.add(Sink::with_capture(
        "snk",
        output,
        THREADS,
        ReadyPolicy::Always,
    ));

    let mut circuit = b.build()?;
    circuit.run(40)?;

    let snk: &Sink<Tagged> = circuit.get("snk").expect("sink exists");
    for t in 0..THREADS {
        let kept: Vec<u64> = snk.captured(t).iter().map(|(_, tok)| tok.seq).collect();
        println!("thread {t}: kept {kept:?} of 0..12 (every 3rd)");
        assert_eq!(kept, vec![0, 3, 6, 9]);
    }
    println!("\nthe component obeyed the kernel contract: the protocol checker stayed silent,");
    println!("all 24 inputs were consumed, 8 forwarded — see docs/kernel.md for the rules.");
    Ok(())
}
