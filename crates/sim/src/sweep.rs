//! Campaign front-end over the work-stealing sweep pool: submit
//! thousands of [`SimJob`]s, stream [`JobReport`]s as they finish, and
//! memoize keyed results across submissions.
//!
//! Experiment binaries often resubmit overlapping campaigns — the same
//! `(circuit, config, seed)` points appear in a scaling curve, an
//! ablation table *and* a regression gate. [`SweepService`] keeps a
//! cache keyed by the job's [`SimJob::with_cache_key`] tag (conventionally
//! produced by [`campaign_key`] from the structural IR hash, the run
//! configuration and the seed), so a point simulates once per process and
//! every later submission answers from memory with `memoized: true` and
//! zero wall time.
//!
//! Untagged jobs always execute; tagged jobs hit the cache only on an
//! exact key match. Failed jobs are never cached (a deadlock may be
//! config-dependent and is cheap to rediscover), and the submission-order
//! final report is indistinguishable from an uncached run apart from the
//! `memoized` markers.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::par::{run_pool, JobReport, SimJob, SweepReport};
use crate::stats::KernelStats;

/// Memoization key for a sweep point: mixes the circuit's structural
/// hash (e.g. `ElasticIr::structural_hash`), a hash of the run
/// configuration (eval mode, cycle budget, policies…) and the seed into
/// one 64-bit FNV-1a digest. Two points with equal keys must be
/// interchangeable simulations.
pub fn campaign_key(ir_hash: u64, config_hash: u64, seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [ir_hash, config_hash, seed] {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Default campaign-cache capacity (entries). Ablation tables and
/// scaling curves hold a few hundred points; the default leaves ample
/// headroom while bounding a long-lived service driving thousands of
/// distinct campaigns.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// One memoized sweep point plus its LRU stamp.
struct CacheEntry<R> {
    value: R,
    kernel: KernelStats,
    /// Monotonic use stamp: smallest = least recently used.
    last_used: u64,
}

/// The capacity-limited campaign cache plus its lifetime counters, all
/// behind one lock so hit accounting and eviction stay consistent.
struct CacheState<R> {
    map: HashMap<u64, CacheEntry<R>>,
    /// Monotonic clock stamped onto entries at insert and on every hit.
    clock: u64,
    evictions: u64,
}

impl<R> CacheState<R> {
    /// Looks up `key`, refreshing its LRU stamp on a hit.
    fn hit(&mut self, key: u64) -> Option<(R, KernelStats)>
    where
        R: Clone,
    {
        let clock = self.clock + 1;
        let entry = self.map.get_mut(&key)?;
        entry.last_used = clock;
        self.clock = clock;
        Some((entry.value.clone(), entry.kernel))
    }

    /// Inserts `key`, evicting the least-recently-used entry first when
    /// the cache is at `cap`. Returns the number of evictions (0 or 1).
    fn insert(&mut self, cap: usize, key: u64, value: R, kernel: KernelStats) -> u64 {
        let mut evicted = 0;
        if !self.map.contains_key(&key) && self.map.len() >= cap {
            // O(cap) scan: caps are a few thousand entries and insertion
            // happens once per *simulated* job, so the scan is noise next
            // to the simulation it follows.
            if let Some(&lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.map.remove(&lru);
                self.evictions += 1;
                evicted = 1;
            }
        }
        self.clock += 1;
        self.map.insert(
            key,
            CacheEntry {
                value,
                kernel,
                last_used: self.clock,
            },
        );
        evicted
    }
}

/// A memoizing sweep front-end: keyed jobs simulate once per process
/// and repeat submissions answer from the campaign cache (see the
/// module-level docs above).
///
/// The cache is **capacity-limited**: at most
/// [`cache_capacity`](SweepService::cache_capacity) entries are held
/// (default [`DEFAULT_CACHE_CAPACITY`]), with least-recently-used
/// eviction — a hit refreshes an entry's recency. Hit/miss/eviction
/// counts for each submission are surfaced on the returned
/// [`SweepReport`] (`cache_hits` / `cache_misses` / `cache_evictions`).
///
/// The service is `Sync`: submissions from several threads share the
/// campaign cache (each submission runs its own pool).
pub struct SweepService<R> {
    workers: usize,
    cap: usize,
    cache: Mutex<CacheState<R>>,
}

impl<R: Clone + Send> SweepService<R> {
    /// A service whose submissions run on `workers` pool threads
    /// (clamped per submission to the number of uncached jobs), caching
    /// up to [`DEFAULT_CACHE_CAPACITY`] results.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            cap: DEFAULT_CACHE_CAPACITY,
            cache: Mutex::new(CacheState {
                map: HashMap::new(),
                clock: 0,
                evictions: 0,
            }),
        }
    }

    /// Sets the campaign-cache entry cap (chainable; clamped to ≥ 1).
    pub fn with_cache_capacity(mut self, cap: usize) -> Self {
        self.cap = cap.max(1);
        self
    }

    /// The campaign-cache entry cap.
    pub fn cache_capacity(&self) -> usize {
        self.cap
    }

    /// Number of memoized results currently held (≤ the cap).
    pub fn cached_results(&self) -> usize {
        self.cache.lock().expect("cache lock").map.len()
    }

    /// Total entries evicted over the service's lifetime.
    pub fn cache_evictions(&self) -> u64 {
        self.cache.lock().expect("cache lock").evictions
    }

    /// Drops every memoized result (eviction counters persist).
    pub fn clear_cache(&self) {
        self.cache.lock().expect("cache lock").map.clear();
    }

    /// Runs a campaign, returning the submission-ordered report.
    pub fn run(&self, jobs: Vec<SimJob<R>>) -> SweepReport<R> {
        self.run_streaming(jobs, |_| {})
    }

    /// Runs a campaign, invoking `on_report` for every job as it
    /// finishes (cache hits first, then pool completions in completion
    /// order, all on the calling thread) before returning the
    /// submission-ordered report.
    pub fn run_streaming(
        &self,
        jobs: Vec<SimJob<R>>,
        mut on_report: impl FnMut(&JobReport<R>),
    ) -> SweepReport<R> {
        let n = jobs.len();
        let start = Instant::now();
        let mut slots: Vec<Option<JobReport<R>>> = (0..n).map(|_| None).collect();
        let mut misses: Vec<(usize, SimJob<R>)> = Vec::new();
        let mut memoized_jobs = 0usize;
        let mut cache_misses = 0u64;
        let mut cache_evictions = 0u64;

        {
            let mut cache = self.cache.lock().expect("cache lock");
            for (index, job) in jobs.into_iter().enumerate() {
                let hit = job.cache_key().and_then(|k| cache.hit(k));
                match hit {
                    Some((value, kernel)) => {
                        let report = JobReport {
                            index,
                            label: job.label().to_string(),
                            cache_key: job.cache_key(),
                            outcome: Ok(value),
                            kernel,
                            wall: Duration::ZERO,
                            memoized: true,
                        };
                        memoized_jobs += 1;
                        on_report(&report);
                        slots[index] = Some(report);
                    }
                    None => {
                        if job.cache_key().is_some() {
                            cache_misses += 1;
                        }
                        misses.push((index, job));
                    }
                }
            }
        }

        let workers_used = if misses.is_empty() {
            1
        } else {
            run_pool(misses, self.workers, &mut |report| {
                if let (Some(key), Ok(value)) = (report.cache_key, &report.outcome) {
                    let mut cache = self.cache.lock().expect("cache lock");
                    cache_evictions += cache.insert(self.cap, key, value.clone(), report.kernel);
                }
                on_report(&report);
                let index = report.index;
                slots[index] = Some(report);
            })
        };

        let jobs: Vec<JobReport<R>> = slots
            .into_iter()
            .map(|s| s.expect("one report per job"))
            .collect();
        let mut kernel = KernelStats::default();
        for j in &jobs {
            kernel.merge(&j.kernel);
        }
        SweepReport {
            jobs,
            workers_requested: self.workers,
            workers_used,
            wall: start.elapsed(),
            kernel,
            memoized_jobs,
            cache_hits: memoized_jobs as u64,
            cache_misses,
            cache_evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::error::SimError;
    use crate::schedule::{ReadyPolicy, Sink, Source};

    fn keyed_job(seed: u64) -> SimJob<Vec<u64>> {
        SimJob::new(format!("point {seed}"), move || {
            let mut b = CircuitBuilder::<u64>::new();
            let ch = b.channel("ch", 1);
            let mut src = Source::new("src", ch, 1);
            src.extend(0, 0..10u64);
            b.add(src);
            b.add(Sink::with_capture(
                "snk",
                ch,
                1,
                ReadyPolicy::Random { p: 0.7, seed },
            ));
            let mut c = b.build().expect("valid");
            c.run(100)?;
            let snk: &Sink<u64> = c.get("snk").expect("sink");
            Ok(snk.captured(0).iter().map(|(_, t)| *t).collect())
        })
        .with_cache_key(campaign_key(0x11, 0x22, seed))
    }

    #[test]
    fn second_submission_is_fully_memoized() {
        let service = SweepService::new(2);
        let first = service.run((0..8).map(keyed_job).collect());
        assert_eq!(first.memoized_jobs, 0);
        assert_eq!(first.ok_count(), 8);
        assert_eq!(service.cached_results(), 8);

        let second = service.run((0..8).map(keyed_job).collect());
        assert_eq!(second.memoized_jobs, 8);
        assert!(second.jobs.iter().all(|j| j.memoized));
        assert!(second.jobs.iter().all(|j| j.wall == Duration::ZERO));
        let a: Vec<_> = first.values().collect();
        let b: Vec<_> = second.values().collect();
        assert_eq!(a, b, "memoized values must equal the originals");
        // Kernel counters are replayed from the cache, so campaign
        // aggregates stay comparable across cached and uncached runs.
        assert_eq!(first.kernel, second.kernel);
    }

    #[test]
    fn overlapping_campaigns_only_run_the_new_points() {
        let service = SweepService::new(2);
        service.run((0..4).map(keyed_job).collect());
        let report = service.run((0..6).map(keyed_job).collect());
        assert_eq!(report.memoized_jobs, 4);
        assert_eq!(report.ok_count(), 6);
        for j in &report.jobs {
            assert_eq!(j.memoized, j.index < 4, "job {} memoization", j.index);
        }
        assert_eq!(service.cached_results(), 6);
    }

    #[test]
    fn untagged_and_failed_jobs_are_never_cached() {
        let service: SweepService<u64> = SweepService::new(1);
        let jobs = || -> Vec<SimJob<u64>> {
            vec![
                SimJob::new("untagged", || Ok(7u64)),
                SimJob::new("fails", || -> Result<u64, SimError> {
                    Err(SimError::CombinationalLoop {
                        cycle: 0,
                        iterations: 1,
                    })
                })
                .with_cache_key(0xDEAD),
            ]
        };
        let first = service.run(jobs());
        assert_eq!(first.memoized_jobs, 0);
        assert_eq!(service.cached_results(), 0);
        let second = service.run(jobs());
        assert_eq!(second.memoized_jobs, 0, "nothing eligible was cached");
    }

    #[test]
    fn streaming_reports_hits_before_misses() {
        let service = SweepService::new(2);
        service.run((0..2).map(keyed_job).collect());
        let mut order: Vec<(usize, bool)> = Vec::new();
        let report = service.run_streaming((0..4).map(keyed_job).collect(), |j| {
            order.push((j.index, j.memoized));
        });
        assert_eq!(report.memoized_jobs, 2);
        assert_eq!(order.len(), 4);
        assert_eq!(&order[..2], &[(0, true), (1, true)]);
        assert!(order[2..].iter().all(|&(i, m)| i >= 2 && !m));
    }

    /// A cheap keyed job (no circuit) for cache-policy tests.
    fn tiny_job(seed: u64) -> SimJob<u64> {
        SimJob::new(format!("tiny {seed}"), move || Ok(seed))
            .with_cache_key(campaign_key(0x33, 0x44, seed))
    }

    #[test]
    fn batch_of_thousands_respects_the_entry_cap() {
        const TOTAL: u64 = 3000;
        const CAP: usize = 64;
        let service = SweepService::new(4).with_cache_capacity(CAP);
        assert_eq!(service.cache_capacity(), CAP);

        let report = service.run((0..TOTAL).map(tiny_job).collect());
        assert_eq!(report.ok_count(), TOTAL as usize);
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.cache_misses, TOTAL);
        assert_eq!(report.cache_evictions, TOTAL - CAP as u64);
        assert_eq!(service.cached_results(), CAP);
        assert_eq!(service.cache_evictions(), TOTAL - CAP as u64);

        // Resubmitting the full batch: at most CAP points can answer from
        // cache; everything evicted re-executes (and evicts again).
        let second = service.run((0..TOTAL).map(tiny_job).collect());
        assert!(second.cache_hits as usize <= CAP);
        assert_eq!(second.cache_hits + second.cache_misses, TOTAL);
        assert!(second.memoized_jobs <= CAP);
        assert_eq!(service.cached_results(), CAP);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries_and_hits_refresh() {
        let service = SweepService::new(1).with_cache_capacity(2);
        service.run(vec![tiny_job(1), tiny_job(2)]);
        assert_eq!(service.cached_results(), 2);

        // Touch key 1 so key 2 becomes the least recently used…
        let touch = service.run(vec![tiny_job(1)]);
        assert_eq!(touch.cache_hits, 1);
        assert_eq!(touch.cache_evictions, 0);

        // …then a new key evicts exactly one entry: key 2, not key 1.
        let third = service.run(vec![tiny_job(3)]);
        assert_eq!(third.cache_evictions, 1);
        let after = service.run(vec![tiny_job(1), tiny_job(2), tiny_job(3)]);
        let memo: Vec<bool> = after.jobs.iter().map(|j| j.memoized).collect();
        assert_eq!(memo, vec![true, false, true], "key 2 was the LRU victim");
    }

    #[test]
    fn untagged_jobs_count_as_neither_hit_nor_miss() {
        let service: SweepService<u64> = SweepService::new(1);
        let report = service.run(vec![SimJob::new("untagged", || Ok(7u64)), tiny_job(0)]);
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.cache_misses, 1, "only the keyed job is a miss");
        assert_eq!(report.cache_evictions, 0);
    }

    #[test]
    fn campaign_key_separates_components() {
        let base = campaign_key(1, 2, 3);
        assert_ne!(base, campaign_key(9, 2, 3));
        assert_ne!(base, campaign_key(1, 9, 3));
        assert_ne!(base, campaign_key(1, 2, 9));
        // Argument order matters (ir/config/seed are distinct axes).
        assert_ne!(campaign_key(1, 2, 3), campaign_key(3, 2, 1));
    }
}
