//! Structural netlist extraction and Graphviz export.
//!
//! A built [`Circuit`] knows every channel's driver and reader; this
//! module turns that into an inspectable graph — render it with
//! `dot -Tsvg` to *see* the elaborated elastic circuit, or use the degree
//! statistics in tests and reports.

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::token::Token;

/// Coarse structural class of a netlist node, used to pick a Graphviz
/// shape: storage draws as a cylinder, routing as a diamond,
/// synchronization as an octagon, testbench endpoints as ellipses and
/// everything else as a box.
///
/// Components report their class through
/// [`Component::netlist_kind`](crate::Component::netlist_kind); graphs
/// extracted from an IR (`elastic-synth`) carry the same classification
/// so both render identically.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum NetlistNodeKind {
    /// Token entry/exit (sources and sinks).
    Endpoint,
    /// Elastic storage (EBs and MEBs) — a legal cut point for feedback
    /// loops.
    Buffer,
    /// Token routing (fork, join, branch, merge).
    Route,
    /// Thread synchronization (barrier).
    Sync,
    /// Functional/latency unit (transform, variable-latency server).
    Unit,
    /// Unclassified component.
    #[default]
    Other,
}

impl NetlistNodeKind {
    /// The Graphviz shape this class renders with.
    pub fn dot_shape(self) -> &'static str {
        match self {
            NetlistNodeKind::Endpoint => "ellipse",
            NetlistNodeKind::Buffer => "cylinder",
            NetlistNodeKind::Route => "diamond",
            NetlistNodeKind::Sync => "octagon",
            NetlistNodeKind::Unit | NetlistNodeKind::Other => "box",
        }
    }
}

/// One channel edge of the netlist.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NetlistEdge {
    /// Channel name.
    pub channel: String,
    /// Thread count of the channel.
    pub threads: usize,
    /// Driving component (index into [`NetlistGraph::components`]).
    pub from: usize,
    /// Reading component (index into [`NetlistGraph::components`]).
    pub to: usize,
}

/// The extracted component/channel graph of a circuit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NetlistGraph {
    /// Component instance names, in evaluation order.
    pub components: Vec<String>,
    /// Structural class of each component (same order as
    /// [`components`](NetlistGraph::components)).
    pub kinds: Vec<NetlistNodeKind>,
    /// Channel edges.
    pub edges: Vec<NetlistEdge>,
}

impl NetlistGraph {
    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.edges.len()
    }

    /// Out-degree (channels driven) of component `i`.
    pub fn fan_out(&self, i: usize) -> usize {
        self.edges.iter().filter(|e| e.from == i).count()
    }

    /// In-degree (channels read) of component `i`.
    pub fn fan_in(&self, i: usize) -> usize {
        self.edges.iter().filter(|e| e.to == i).count()
    }

    /// Components with no inputs (sources) and no outputs (sinks).
    pub fn endpoints(&self) -> (Vec<usize>, Vec<usize>) {
        let sources = (0..self.components.len())
            .filter(|&i| self.fan_in(i) == 0)
            .collect();
        let sinks = (0..self.components.len())
            .filter(|&i| self.fan_out(i) == 0)
            .collect();
        (sources, sinks)
    }

    /// The components woken when component `i`'s signals change — the
    /// readers of its output channels (reached by `valid`/`data` changes)
    /// plus the drivers of its input channels (reached by `ready`
    /// changes), sorted and deduplicated, excluding `i` itself. This is
    /// the static neighbourhood the event-driven kernel's dirty set walks
    /// (see `docs/kernel.md`).
    pub fn wake_set(&self, i: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .edges
            .iter()
            .filter_map(|e| {
                if e.from == i {
                    Some(e.to)
                } else if e.to == i {
                    Some(e.from)
                } else {
                    None
                }
            })
            .filter(|&j| j != i)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether the graph contains a directed cycle (a feedback loop
    /// through the datapath — legal in elastic circuits when cut by
    /// buffers, but worth knowing about).
    pub fn has_cycle(&self) -> bool {
        // Iterative DFS with colors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.components.len();
        let mut adj = vec![Vec::new(); n];
        for e in &self.edges {
            adj[e.from].push(e.to);
        }
        let mut color = vec![Color::White; n];
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            // (node, next child index)
            let mut stack = vec![(start, 0usize)];
            color[start] = Color::Gray;
            while let Some(&mut (node, ref mut child)) = stack.last_mut() {
                if *child < adj[node].len() {
                    let next = adj[node][*child];
                    *child += 1;
                    match color[next] {
                        Color::Gray => return true,
                        Color::White => {
                            color[next] = Color::Gray;
                            stack.push((next, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[node] = Color::Black;
                    stack.pop();
                }
            }
        }
        false
    }

    /// Renders the graph in Graphviz DOT syntax. Multithreaded channels
    /// are labelled with their thread count; node shapes follow
    /// [`NetlistNodeKind::dot_shape`] (buffers as cylinders, routing as
    /// diamonds, barriers as octagons, endpoints as ellipses).
    pub fn to_dot(&self) -> String {
        self.to_dot_styled(&[])
    }

    /// [`to_dot`](Self::to_dot) with extra per-node attributes: each
    /// `(component name, attributes)` pair appends `attributes` verbatim
    /// to that node's attribute list (e.g. `("buf", "color=green,
    /// penwidth=2")`). Names with no entry render as in `to_dot`; pass
    /// highlighting (`elastic-synth`'s `dot_with_deltas`) uses this to
    /// colour inserted/resized/moved buffers.
    pub fn to_dot_styled(&self, styles: &[(String, String)]) -> String {
        let mut out = String::from(
            "digraph elastic {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n",
        );
        for (i, name) in self.components.iter().enumerate() {
            let kind = self.kinds.get(i).copied().unwrap_or_default();
            let shape = kind.dot_shape();
            let mut attrs = format!("label=\"{}\"", name.replace('"', "'"));
            if shape != "box" {
                let _ = write!(attrs, ", shape={shape}");
            }
            if let Some((_, extra)) = styles.iter().find(|(n, _)| n == name) {
                let _ = write!(attrs, ", {extra}");
            }
            let _ = writeln!(out, "  n{i} [{attrs}];");
        }
        for e in &self.edges {
            let label = if e.threads > 1 {
                format!("{} ({}t)", e.channel, e.threads)
            } else {
                e.channel.clone()
            };
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{}\"];",
                e.from,
                e.to,
                label.replace('"', "'")
            );
        }
        out.push_str("}\n");
        out
    }
}

impl std::fmt::Display for NetlistGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "netlist: {} components, {} channels{}",
            self.component_count(),
            self.channel_count(),
            if self.has_cycle() {
                " (contains feedback)"
            } else {
                ""
            }
        )?;
        for e in &self.edges {
            writeln!(
                f,
                "  {} --[{} x{}]--> {}",
                self.components[e.from], e.channel, e.threads, self.components[e.to]
            )?;
        }
        Ok(())
    }
}

impl<T: Token> Circuit<T> {
    /// Extracts the structural netlist of this circuit.
    pub fn netlist(&self) -> NetlistGraph {
        let components = self.component_names();
        let kinds = self.component_kinds();
        let edges = self
            .channel_ids()
            .into_iter()
            .map(|ch| NetlistEdge {
                channel: self.channel_name(ch).to_string(),
                threads: self.channel_threads(ch),
                from: self.channel_driver(ch),
                to: self.channel_reader(ch),
            })
            .collect();
        NetlistGraph {
            components,
            kinds,
            edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::schedule::{ReadyPolicy, Sink, Source};
    use crate::varlat::Transform;

    fn pipeline() -> Circuit<u64> {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 2);
        let c = b.channel("c", 2);
        let mut src = Source::new("src", a, 2);
        src.push(0, 1);
        b.add(src);
        b.add(Transform::new("double", a, c, 2, |x| x * 2));
        b.add(Sink::new("snk", c, 2, ReadyPolicy::Always));
        b.build().expect("valid")
    }

    #[test]
    fn netlist_extracts_components_and_edges() {
        let g = pipeline().netlist();
        assert_eq!(g.component_count(), 3);
        assert_eq!(g.channel_count(), 2);
        // Rank order, not insertion order: the sink has no combinational
        // paths so it evaluates first; src and the pass-through transform
        // form one SCC (src's damped ready→valid closes their loop) and
        // keep their relative insertion order at the next level.
        assert_eq!(g.components, vec!["snk", "src", "double"]);
        assert_eq!(g.fan_out(1), 1, "src drives one channel");
        assert_eq!(g.fan_in(0), 1, "snk reads one channel");
        let (sources, sinks) = g.endpoints();
        assert_eq!(sources, vec![1]);
        assert_eq!(sinks, vec![0]);
        assert!(!g.has_cycle());
    }

    #[test]
    fn wake_set_is_the_channel_neighbourhood() {
        let g = pipeline().netlist();
        // Indices follow rank order: 0 = snk, 1 = src, 2 = double. src's
        // only neighbour is the transform (reader of `a`); the transform
        // is woken by both endpoints.
        assert_eq!(g.wake_set(1), vec![2]);
        assert_eq!(g.wake_set(2), vec![0, 1]);
        assert_eq!(g.wake_set(0), vec![2]);
    }

    #[test]
    fn dot_output_is_wellformed() {
        let dot = pipeline().netlist().to_dot();
        assert!(dot.starts_with("digraph elastic {"));
        assert!(dot.contains("n1 -> n2"), "src feeds the transform:\n{dot}");
        assert!(dot.contains("(2t)"), "{dot}");
        // Endpoints (src/snk) render as ellipses via their declared kind.
        assert!(dot.contains("shape=ellipse"), "{dot}");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn styled_dot_appends_node_attributes() {
        let styles = vec![("double".to_string(), "color=orange, penwidth=2".to_string())];
        let g = pipeline().netlist();
        let dot = g.to_dot_styled(&styles);
        assert!(
            dot.contains("label=\"double\", color=orange, penwidth=2"),
            "{dot}"
        );
        assert!(!dot.contains("label=\"src\", color"), "{dot}");
        // No styles renders byte-identically to the plain form.
        assert_eq!(g.to_dot_styled(&[]), g.to_dot());
    }

    #[test]
    fn netlist_kinds_follow_component_declarations() {
        let g = pipeline().netlist();
        // Rank order: 0 = snk, 1 = src, 2 = double.
        assert_eq!(
            g.kinds,
            vec![
                NetlistNodeKind::Endpoint,
                NetlistNodeKind::Endpoint,
                NetlistNodeKind::Unit
            ]
        );
    }

    #[test]
    fn cycle_detection_finds_feedback() {
        // Manually constructed graph with a loop.
        let g = NetlistGraph {
            components: vec!["a".into(), "b".into(), "c".into()],
            kinds: vec![NetlistNodeKind::Other; 3],
            edges: vec![
                NetlistEdge {
                    channel: "x".into(),
                    threads: 1,
                    from: 0,
                    to: 1,
                },
                NetlistEdge {
                    channel: "y".into(),
                    threads: 1,
                    from: 1,
                    to: 2,
                },
                NetlistEdge {
                    channel: "z".into(),
                    threads: 1,
                    from: 2,
                    to: 1,
                },
            ],
        };
        assert!(g.has_cycle());
        assert!(g.to_string().contains("feedback"));
    }

    #[test]
    fn display_lists_edges() {
        let text = pipeline().netlist().to_string();
        assert!(text.contains("src --[a x2]--> double"));
    }
}
