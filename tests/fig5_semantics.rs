//! E-F5 / E-X2 — integration tests pinning the semantics behind the
//! paper's Figure 5 and the Sec. III-A analysis: the full and reduced
//! MEB pipelines behave identically except in the all-but-one-blocked
//! worst case.

use elastic_bench::{fig5_harness, fig5_rows, reduced_worstcase, Fig5Setup};
use mt_elastic::core::{MebKind, PipelineConfig, PipelineHarness};
use mt_elastic::sim::{GridTrace, ReadyPolicy};

/// During a *bounded* stall (Fig. 5's scenario) both variants deliver the
/// same tokens in the same per-thread order.
#[test]
fn bounded_stall_same_deliveries_for_both_variants() {
    let mut outputs = Vec::new();
    for kind in [MebKind::Full, MebKind::Reduced] {
        let h = fig5_harness(&Fig5Setup::paper(kind));
        let per_thread: Vec<Vec<u64>> = (0..2)
            .map(|t| {
                h.sink()
                    .captured(t)
                    .iter()
                    .map(|(_, tok)| tok.seq)
                    .collect()
            })
            .collect();
        assert_eq!(
            per_thread[0],
            (0..8).collect::<Vec<_>>(),
            "{kind} thread A order"
        );
        assert_eq!(
            per_thread[1],
            (0..8).collect::<Vec<_>>(),
            "{kind} thread B order"
        );
        outputs.push(per_thread);
    }
    assert_eq!(outputs[0], outputs[1]);
}

/// The stalled thread never blocks the other thread's progress during the
/// stall window (the MT-elastic selling point).
#[test]
fn unblocked_thread_keeps_flowing_during_the_stall() {
    for kind in [MebKind::Full, MebKind::Reduced] {
        let setup = Fig5Setup::paper(kind);
        let h = fig5_harness(&setup);
        let a_during_stall = h
            .sink()
            .captured(0)
            .iter()
            .filter(|(c, _)| *c >= setup.stall_from && *c < setup.stall_to)
            .count();
        // The stall lasts 5 cycles; thread A must land several tokens.
        assert!(
            a_during_stall >= 2,
            "{kind}: A delivered {a_during_stall} during the stall"
        );
    }
}

/// The one behavioural difference (paper, Sec. III-A): with every other
/// thread blocked and backpressure at the source, a full-MEB pipeline
/// still gives the active thread the whole channel; a reduced one caps
/// it at 50 %.
#[test]
fn worstcase_throughput_separation() {
    let full = reduced_worstcase(MebKind::Full, 2, 4);
    let reduced = reduced_worstcase(MebKind::Reduced, 2, 4);
    assert!(
        full.active_throughput > 0.95,
        "full: {:.3}",
        full.active_throughput
    );
    assert!(
        (reduced.active_throughput - 0.5).abs() < 0.05,
        "reduced: {:.3}",
        reduced.active_throughput
    );
}

/// The separation persists across pipeline depths and thread counts.
#[test]
fn worstcase_separation_scales() {
    for threads in [2usize, 4] {
        for stages in [2usize, 6] {
            let full = reduced_worstcase(MebKind::Full, threads, stages);
            let reduced = reduced_worstcase(MebKind::Reduced, threads, stages);
            assert!(
                full.active_throughput > 0.9,
                "full S={threads} stages={stages}: {:.3}",
                full.active_throughput
            );
            assert!(
                reduced.active_throughput < 0.6,
                "reduced S={threads} stages={stages}: {:.3}",
                reduced.active_throughput
            );
        }
    }
}

/// In the reduced trace, the stalled thread's second token sits in the
/// *shared* register; in the full trace it sits in the thread's private
/// aux slot — the microarchitectural difference the figure illustrates.
#[test]
fn traces_show_where_the_stalled_tokens_live() {
    let setup = Fig5Setup::paper(MebKind::Reduced);
    let h = fig5_harness(&setup);
    let grid = GridTrace::new(fig5_rows(&h, MebKind::Reduced));
    let text = grid.render(h.circuit.trace().expect("traced"), 0, setup.cycles - 1);
    assert!(text.contains("shared"), "{text}");

    let setup = Fig5Setup::paper(MebKind::Full);
    let h = fig5_harness(&setup);
    let trace = h.circuit.trace().expect("traced");
    let b_in_aux = trace.records().iter().any(|r| {
        r.slots.iter().map(|(_, slots)| slots).any(|slots| {
            slots
                .iter()
                .any(|s| s.name == "aux[1]" && s.occupant.as_ref().is_some_and(|(t, _)| *t == 1))
        })
    });
    assert!(b_in_aux, "full MEB never used thread B's private aux slot");
}

/// Injection for the stalled thread stops once its storage fills —
/// "injection for thread B stops and only data for thread A enter the
/// system" (paper, Fig. 5 discussion).
#[test]
fn stalled_thread_injection_backpressures_to_the_source() {
    let mut cfg = PipelineConfig::free_flowing(2, 2, MebKind::Reduced, 40);
    cfg = cfg.with_sink_policy(1, ReadyPolicy::Never);
    let mut h = PipelineHarness::build(cfg);
    h.circuit.run(40).expect("runs clean");
    let injected_b = h.source().injected(1);
    // Reduced, 2 stages: B can hold at most one main slot per stage plus
    // the shared slots: 2 mains + 2 shared = 4 tokens in flight.
    assert!(
        injected_b <= 4,
        "B injected {injected_b} tokens into a blocked pipeline"
    );
    // A keeps flowing meanwhile — at the reduced worst-case rate of ~50 %
    // once B's backpressure occupies every shared slot (Sec. III-A).
    assert!(
        h.sink().consumed(0) >= 18,
        "A consumed only {}",
        h.sink().consumed(0)
    );
}
