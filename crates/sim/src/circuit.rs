//! The synchronous simulation kernel.
//!
//! Each cycle proceeds in two phases, mirroring synchronous hardware:
//!
//! 1. **Combinational settle** — components' [`eval`](crate::Component::eval)
//!    run until no signal changes (fixed point). Components are evaluated
//!    in the *rank order* the builder compiled from their declared
//!    combinational paths ([`Component::comb_paths`](crate::Component::comb_paths)):
//!    every component comes after everything it depends on, so on an
//!    acyclic net the single full sweep of round 1 *is* the fixed point.
//!    The default [`EvalMode::EventDriven`] kernel then re-evaluates only
//!    *dirty* components: when a channel's `valid`/`data` changes its
//!    reader is woken **iff it declared a path triggered by that signal**,
//!    likewise the driver on a `ready` change; residual rounds fire only
//!    for hysteretic arbiters on feedback channels. Zero-latency handshake
//!    cycles are rejected at `build()` time
//!    ([`BuildError::CombinationalLoop`](crate::BuildError::CombinationalLoop))
//!    — exactly the class of circuit that is illegal in elastic design
//!    unless cut by an elastic buffer; the runtime
//!    [`SimError::CombinationalLoop`] cap survives only as a safety net
//!    for damped feedback loops.
//! 2. **Clock edge** — the settled signals determine which transfers fire
//!    (`valid(i) && ready(i)`); every component's
//!    [`tick`](crate::Component::tick) then updates its registers.
//!
//! Two fast-paths keep the event-driven kernel cheap (see
//! `docs/kernel.md`): a cycle that converges after its single full sweep
//! goes straight to the clock edge, and a *quiescent* network (no token
//! offered anywhere) can be fast-forwarded across empty cycles to the next
//! self-scheduled component event ([`Component::next_event`]).
//!
//! The hot loop is allocation-free (see `docs/perf.md`): handshake bits
//! live in packed [`ThreadMask`] words, the dirty set is itself a mask
//! over components, change detection happens word-level inside the
//! signal setters, and the batch drivers [`Circuit::run`] /
//! [`Circuit::run_until`] skip transfer-record collection entirely.

use crate::channel::{ChannelId, ChannelState};
use crate::component::{Component, NextEvent};
use crate::error::SimError;
use crate::fused::{FusedOpKind, FusedTable, KernelBackend, SweepCtx};
use crate::mask::ThreadMask;
use crate::rank::Schedule;
use crate::stats::Stats;
use crate::token::Token;
use crate::trace::{ChannelTrace, CycleTrace, TraceRecorder};

/// How the settle phase schedules component evaluations each cycle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum EvalMode {
    /// Event-driven dirty-set kernel (default): after one full sweep,
    /// only components woken by a signal change on a channel they read
    /// or drive are re-evaluated, until the worklist drains.
    #[default]
    EventDriven,
    /// Reference kernel: every settle iteration re-evaluates every
    /// component until an iteration changes nothing. Kept as the
    /// equivalence oracle for tests, benches and the ablation binary.
    Exhaustive,
}

/// Combinational-phase view of the circuit handed to
/// [`Component::eval`](crate::Component::eval).
///
/// Setters enforce signal ownership: a component may drive `valid`/`data`
/// only on its output channels and `ready` only on its input channels.
/// Every effective change is recorded in the kernel's dirty set — a
/// `valid`/`data` change wakes the channel's reader, a `ready` change
/// wakes its driver. Change detection is word-level: the packed masks
/// report whether a write flipped anything, so the kernel never clones
/// channel state to diff it.
pub struct EvalCtx<'a, T: Token> {
    pub(crate) channels: &'a mut [ChannelState<T>],
    /// Per-component wake flags: set when a signal a component depends on
    /// changes, consumed by the settle loop's worklist rounds.
    pub(crate) woke: &'a mut ThreadMask,
    /// Whether any signal changed during the current settle round.
    pub(crate) changed: &'a mut bool,
    pub(crate) current: usize,
    pub(crate) driver: &'a [usize],
    pub(crate) reader: &'a [usize],
    /// Per-channel: the reader declared a combinational path triggered by
    /// this channel's `valid`/`data` (see [`Component::comb_paths`]).
    pub(crate) listen_valid: &'a [bool],
    /// Per-channel: the driver declared a path triggered by `ready`.
    pub(crate) listen_ready: &'a [bool],
    /// Per-channel: `valid` and `ready` share a combinational SCC.
    pub(crate) feedback: &'a [bool],
    pub(crate) cycle: u64,
}

impl<'a, T: Token> EvalCtx<'a, T> {
    /// Index of the cycle currently being evaluated (0-based).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// True when channel `ch` takes part in a combinational feedback
    /// cycle (its `valid` and `ready` belong to one SCC of the declared
    /// path graph — necessarily through a damped hysteretic path, or the
    /// netlist would have been rejected at build time).
    ///
    /// Ready-aware arbiters use this to decide whether their anti-swap
    /// settle guard is needed: on a feedback channel the downstream
    /// `ready` can combinationally depend on the arbiter's own `valid`,
    /// so the selection must be damped to converge; on a DAG channel the
    /// guard is unnecessary and disabling it keeps the evaluation a pure
    /// function of its inputs (hence order-independent).
    pub fn in_feedback(&self, ch: ChannelId) -> bool {
        self.feedback[ch.0]
    }

    /// Thread count of channel `ch`.
    pub fn threads(&self, ch: ChannelId) -> usize {
        self.channels[ch.0].spec.threads
    }

    /// Current `valid(thread)` on `ch`.
    pub fn valid(&self, ch: ChannelId, thread: usize) -> bool {
        self.channels[ch.0].valid.get(thread)
    }

    /// Current `ready(thread)` on `ch`.
    pub fn ready(&self, ch: ChannelId, thread: usize) -> bool {
        self.channels[ch.0].ready.get(thread)
    }

    /// The packed `valid` mask of `ch` (all threads at once).
    pub fn valid_mask(&self, ch: ChannelId) -> &ThreadMask {
        &self.channels[ch.0].valid
    }

    /// The packed `ready` mask of `ch` (all threads at once).
    pub fn ready_mask(&self, ch: ChannelId) -> &ThreadMask {
        &self.channels[ch.0].ready
    }

    /// Current data word on `ch` (driven by the producer).
    pub fn data(&self, ch: ChannelId) -> Option<&T> {
        self.channels[ch.0].data.as_ref()
    }

    /// The single asserted thread and its data, if exactly one `valid(i)`
    /// is high and data is present.
    pub fn incoming(&self, ch: ChannelId) -> Option<(usize, &T)> {
        let st = &self.channels[ch.0];
        let t = st.single_valid()?;
        st.data.as_ref().map(|d| (t, d))
    }

    /// Marks the channel's reader dirty — but only if it declared a path
    /// triggered by this channel's `valid`/`data`; an unlistened signal
    /// provably cannot change the reader's eval. On a feedback channel
    /// the current component also self-wakes: hysteretic selection reads
    /// its own driven signals, so its eval must re-run until it is a
    /// no-op — the oracle's convergence condition. On DAG channels the
    /// guards are disabled and evals are pure, so no self-wake is needed.
    #[inline]
    fn wake_reader(&mut self, ch: usize) {
        *self.changed = true;
        if self.listen_valid[ch] {
            self.woke.set(self.reader[ch], true);
        }
        if self.feedback[ch] {
            self.woke.set(self.current, true);
        }
    }

    /// Marks the channel's driver dirty (same filtering as
    /// [`wake_reader`](Self::wake_reader), for `ready` changes).
    #[inline]
    fn wake_driver(&mut self, ch: usize) {
        *self.changed = true;
        if self.listen_ready[ch] {
            self.woke.set(self.driver[ch], true);
        }
        if self.feedback[ch] {
            self.woke.set(self.current, true);
        }
    }

    #[inline]
    fn assert_drives(&self, ch: ChannelId, signal: &str) {
        assert_eq!(
            self.driver[ch.0], self.current,
            "component tried to drive {signal} on channel `{}` it does not own",
            self.channels[ch.0].spec.name
        );
    }

    #[inline]
    fn assert_reads(&self, ch: ChannelId) {
        assert_eq!(
            self.reader[ch.0], self.current,
            "component tried to drive ready on channel `{}` it does not read",
            self.channels[ch.0].spec.name
        );
    }

    /// Drives `valid(thread)` on an output channel.
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not the registered driver of
    /// `ch` — this is a component-implementation bug.
    pub fn set_valid(&mut self, ch: ChannelId, thread: usize, value: bool) {
        self.assert_drives(ch, "valid");
        if self.channels[ch.0].valid.set(thread, value) {
            self.wake_reader(ch.0);
        }
    }

    /// Drives `valid(thread)` high and every other thread's valid low in
    /// one word-level pass (the MT channel invariant: at most one valid
    /// thread per cycle).
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not the registered driver of `ch`.
    pub fn set_valid_only(&mut self, ch: ChannelId, thread: usize) {
        self.assert_drives(ch, "valid");
        if self.channels[ch.0].valid.set_only(thread) {
            self.wake_reader(ch.0);
        }
    }

    /// Drives the data word on an output channel.
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not the registered driver of `ch`.
    pub fn set_data(&mut self, ch: ChannelId, value: Option<T>) {
        self.assert_drives(ch, "data");
        let slot = &mut self.channels[ch.0].data;
        if *slot != value {
            *slot = value;
            self.wake_reader(ch.0);
        }
    }

    /// Drives `ready(thread)` on an input channel.
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not the registered reader of `ch`.
    pub fn set_ready(&mut self, ch: ChannelId, thread: usize, value: bool) {
        self.assert_reads(ch);
        if self.channels[ch.0].ready.set(thread, value) {
            self.wake_driver(ch.0);
        }
    }

    /// Drives `ready(thread)` high and every other thread's ready low in
    /// one word-level pass.
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not the registered reader of `ch`.
    pub fn set_ready_only(&mut self, ch: ChannelId, thread: usize) {
        self.assert_reads(ch);
        if self.channels[ch.0].ready.set_only(thread) {
            self.wake_driver(ch.0);
        }
    }

    /// Drives the whole packed `valid` mask of an output channel in one
    /// word-level commit. Observably identical to calling
    /// [`set_valid`](Self::set_valid) for every thread: the wake targets
    /// of a `valid` change do not depend on *which* thread flipped, so a
    /// single reader wake after a word-level diff ([`ThreadMask::assign`])
    /// reaches exactly the same dirty set.
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not the registered driver of
    /// `ch`, or if the mask width differs from the channel's.
    pub fn set_valid_mask(&mut self, ch: ChannelId, mask: &ThreadMask) {
        self.assert_drives(ch, "valid");
        if self.channels[ch.0].valid.assign(mask) {
            self.wake_reader(ch.0);
        }
    }

    /// Drives the whole packed `ready` mask of an input channel in one
    /// word-level commit (the `ready`-side counterpart of
    /// [`set_valid_mask`](Self::set_valid_mask)).
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not the registered reader of
    /// `ch`, or if the mask width differs from the channel's.
    pub fn set_ready_mask(&mut self, ch: ChannelId, mask: &ThreadMask) {
        self.assert_reads(ch);
        if self.channels[ch.0].ready.assign(mask) {
            self.wake_driver(ch.0);
        }
    }

    /// Convenience: drives all `valid` bits low and clears data on an
    /// output channel (an idle producer). Word-level: one clear per mask
    /// word instead of a per-thread loop.
    pub fn drive_idle(&mut self, ch: ChannelId) {
        self.assert_drives(ch, "valid");
        if self.channels[ch.0].valid.clear() {
            self.wake_reader(ch.0);
        }
        self.set_data(ch, None);
    }

    /// Convenience: asserts `valid(thread)` with `data`, deasserting every
    /// other thread's valid bit (the MT channel invariant).
    pub fn drive_token(&mut self, ch: ChannelId, thread: usize, data: T) {
        self.set_valid_only(ch, thread);
        self.set_data(ch, Some(data));
    }

    /// Convenience: drives every `ready` bit of an input channel low.
    /// Word-level: one clear per mask word instead of a per-thread loop.
    pub fn drive_unready(&mut self, ch: ChannelId) {
        self.assert_reads(ch);
        if self.channels[ch.0].ready.clear() {
            self.wake_driver(ch.0);
        }
    }
}

/// Clock-edge view of the circuit handed to
/// [`Component::tick`](crate::Component::tick): read-only access to the
/// settled signals of the finishing cycle.
pub struct TickCtx<'a, T: Token> {
    pub(crate) channels: &'a [ChannelState<T>],
    pub(crate) cycle: u64,
}

impl<'a, T: Token> TickCtx<'a, T> {
    /// Index of the cycle whose clock edge is being processed.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Thread count of channel `ch`.
    pub fn threads(&self, ch: ChannelId) -> usize {
        self.channels[ch.0].spec.threads
    }

    /// Settled `valid(thread)`.
    pub fn valid(&self, ch: ChannelId, thread: usize) -> bool {
        self.channels[ch.0].valid.get(thread)
    }

    /// Settled `ready(thread)`.
    pub fn ready(&self, ch: ChannelId, thread: usize) -> bool {
        self.channels[ch.0].ready.get(thread)
    }

    /// The settled packed `valid` mask of `ch`.
    pub fn valid_mask(&self, ch: ChannelId) -> &ThreadMask {
        &self.channels[ch.0].valid
    }

    /// The settled packed `ready` mask of `ch`.
    pub fn ready_mask(&self, ch: ChannelId) -> &ThreadMask {
        &self.channels[ch.0].ready
    }

    /// Settled data word.
    pub fn data(&self, ch: ChannelId) -> Option<&T> {
        self.channels[ch.0].data.as_ref()
    }

    /// Whether thread `t`'s transfer fired on `ch` this cycle.
    pub fn fired(&self, ch: ChannelId, thread: usize) -> bool {
        self.channels[ch.0].fires(thread)
    }

    /// The thread and token of the transfer that fired on `ch`, if any.
    pub fn fired_any(&self, ch: ChannelId) -> Option<(usize, &T)> {
        let st = &self.channels[ch.0];
        let t = st.single_valid()?;
        if st.ready.get(t) {
            st.data.as_ref().map(|d| (t, d))
        } else {
            None
        }
    }
}

/// One fired transfer, as reported by [`Circuit::step`].
///
/// Carries only the interned [`ChannelId`] and thread index; resolve the
/// channel name at render time via
/// [`Circuit::channel_name`](Circuit::channel_name) instead of cloning a
/// `String` per transfer on the hot path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Transfer {
    /// Channel on which the transfer fired.
    pub channel: ChannelId,
    /// Thread that moved.
    pub thread: usize,
}

/// Summary of one simulated cycle.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CycleReport {
    /// Index of the cycle that just completed.
    pub cycle: u64,
    /// All transfers that fired.
    pub transfers: Vec<Transfer>,
    /// Number of settle rounds the combinational phase needed (the full
    /// sweep counts as round one).
    pub settle_iterations: usize,
    /// Number of `Component::eval` invocations the settle phase performed.
    pub evals: usize,
}

/// Backing storage for a circuit's components: either the boxed vector
/// the interpreted kernel walks (vtable dispatch per eval) or a lowered
/// [`FusedTable`] (one dynamic call per settle round, `match` dispatch
/// inside). Every cold path — reset, lookup, tracing, next-event scan —
/// goes through [`get`](ComponentStore::get)/[`get_mut`](ComponentStore::get_mut),
/// which both variants serve as plain `dyn Component` borrows, so only
/// the settle/tick hot paths branch on the variant.
pub(crate) enum ComponentStore<T: Token> {
    /// Boxed components in rank order (the interpreted backend).
    Boxed(Vec<Box<dyn Component<T>>>),
    /// A lowered op table in the same rank order (the fused backend).
    Fused(Box<dyn FusedTable<T>>),
}

impl<T: Token> ComponentStore<T> {
    pub(crate) fn len(&self) -> usize {
        match self {
            ComponentStore::Boxed(v) => v.len(),
            ComponentStore::Fused(t) => t.len(),
        }
    }

    pub(crate) fn get(&self, i: usize) -> &dyn Component<T> {
        match self {
            ComponentStore::Boxed(v) => v[i].as_ref(),
            ComponentStore::Fused(t) => t.component(i),
        }
    }

    pub(crate) fn get_mut(&mut self, i: usize) -> &mut dyn Component<T> {
        match self {
            ComponentStore::Boxed(v) => v[i].as_mut(),
            ComponentStore::Fused(t) => t.component_mut(i),
        }
    }

    pub(crate) fn backend(&self) -> KernelBackend {
        match self {
            ComponentStore::Boxed(_) => KernelBackend::Interpreted,
            ComponentStore::Fused(_) => KernelBackend::Fused,
        }
    }
}

/// A fully wired synchronous elastic circuit.
///
/// Build one with [`CircuitBuilder`](crate::CircuitBuilder), then drive it
/// with [`step`](Circuit::step) / [`run`](Circuit::run).
pub struct Circuit<T: Token> {
    pub(crate) components: ComponentStore<T>,
    pub(crate) channels: Vec<ChannelState<T>>,
    /// Per-channel driving component — doubles as the `ready`-change wake
    /// map of the event-driven kernel.
    pub(crate) driver: Vec<usize>,
    /// Per-channel reading component — doubles as the `valid`/`data`
    /// wake map of the event-driven kernel.
    pub(crate) reader: Vec<usize>,
    /// Per-channel wake filter: reader listens to `valid`/`data` changes.
    listen_valid: Vec<bool>,
    /// Per-channel wake filter: driver listens to `ready` changes.
    listen_ready: Vec<bool>,
    /// Per-channel: part of a (damped) combinational feedback cycle.
    feedback: Vec<bool>,
    /// Widest rank level of the compiled schedule.
    rank_width: u64,
    mode: EvalMode,
    /// Scratch wake flags, one bit per component (the dirty set).
    woke: ThreadMask,
    /// Whether the last stepped cycle ended with no token anywhere.
    quiescent: bool,
    cycle: u64,
    stats: Stats,
    recorder: Option<TraceRecorder>,
    watchdog: Option<u64>,
    idle_cycles: u64,
    /// Cycle of the most recent fired transfer, for watchdog reports.
    last_progress: Option<u64>,
    /// Accumulate settle-phase wall time into
    /// [`KernelStats::settle_nanos`] (off by default: two clock reads per
    /// cycle are pure overhead outside backend-ablation runs).
    time_settle: bool,
}

impl<T: Token> Circuit<T> {
    pub(crate) fn from_parts(
        components: ComponentStore<T>,
        channels: Vec<ChannelState<T>>,
        driver: Vec<usize>,
        reader: Vec<usize>,
        schedule: Schedule,
    ) -> Self {
        let stats = Stats::new(
            channels
                .iter()
                .map(|c| (c.spec.name.clone(), c.spec.threads)),
        );
        let woke = ThreadMask::new(components.len());
        Self {
            components,
            channels,
            driver,
            reader,
            listen_valid: schedule.listen_valid,
            listen_ready: schedule.listen_ready,
            feedback: schedule.feedback,
            rank_width: schedule.rank_width,
            mode: EvalMode::default(),
            woke,
            quiescent: false,
            cycle: 0,
            stats,
            recorder: None,
            watchdog: None,
            idle_cycles: 0,
            last_progress: None,
            time_settle: false,
        }
    }

    /// Index of the next cycle to simulate (0 before the first
    /// [`step`](Circuit::step)).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The active settle-phase scheduling mode.
    pub fn eval_mode(&self) -> EvalMode {
        self.mode
    }

    /// Which kernel backend this circuit was built with: `Interpreted`
    /// (boxed components, vtable dispatch) or `Fused` (lowered op table).
    pub fn backend(&self) -> KernelBackend {
        self.components.backend()
    }

    /// Selects the settle-phase scheduling mode. Both modes reach the
    /// same fixed point (the exhaustive sweep is kept as the equivalence
    /// oracle); they differ only in how many `eval` calls they spend.
    pub fn set_eval_mode(&mut self, mode: EvalMode) {
        self.mode = mode;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets the statistics counters (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Rewinds the circuit to its freshly built state **without
    /// re-running elaboration**: every component is reset to empty
    /// ([`Component::reset`]), all channel signals are cleared, and the
    /// clock, statistics, dirty set and watchdog bookkeeping start over.
    ///
    /// This is what lets the parallel sweep pool reuse one elaborated
    /// circuit per worker across many sweep points
    /// ([`SimJob::on_circuit`](crate::SimJob::on_circuit)) instead of
    /// paying `build()` per job. The structure (components, channels,
    /// compiled rank schedule), the eval mode and any armed watchdog
    /// persist; recorded traces are dropped and tracing is switched off
    /// (call [`enable_trace`](Circuit::enable_trace) again if needed).
    ///
    /// # Errors
    ///
    /// [`SimError::ResetUnsupported`] if any component keeps the
    /// conservative default `reset` (the circuit is left partially reset
    /// and must be rebuilt). All shipped primitives support reset.
    pub fn reset(&mut self) -> Result<(), SimError> {
        for i in 0..self.components.len() {
            let c = self.components.get_mut(i);
            if !c.reset() {
                return Err(SimError::ResetUnsupported {
                    index: i,
                    component: c.name().to_string(),
                });
            }
        }
        for ch in &mut self.channels {
            ch.valid.clear();
            ch.ready.clear();
            ch.data = None;
        }
        self.woke.clear();
        self.quiescent = false;
        self.cycle = 0;
        self.stats.reset();
        self.recorder = None;
        self.idle_cycles = 0;
        self.last_progress = None;
        Ok(())
    }

    /// Starts recording cycle traces (unbounded).
    pub fn enable_trace(&mut self) {
        let mut r = TraceRecorder::new();
        r.set_names(self.component_names());
        self.recorder = Some(r);
    }

    /// Starts recording cycle traces, keeping at most `limit` cycles.
    pub fn enable_trace_limited(&mut self, limit: usize) {
        let mut r = TraceRecorder::with_limit(limit);
        r.set_names(self.component_names());
        self.recorder = Some(r);
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.recorder.as_ref()
    }

    /// Arms (or disarms) settle-phase wall timing: while enabled, every
    /// stepped cycle adds the wall time of its combinational settle loop
    /// to [`KernelStats::settle_nanos`]. The clock reads sit outside the
    /// measured span, and the flag is off by default so ordinary runs pay
    /// nothing. Backend ablations gate on this number — it isolates the
    /// phase the dispatch backend actually changes from the tick/capture
    /// phases that are identical across backends.
    ///
    /// [`KernelStats::settle_nanos`]: crate::KernelStats::settle_nanos
    pub fn set_settle_timing(&mut self, enabled: bool) {
        self.time_settle = enabled;
    }

    /// Arms a deadlock watchdog: [`step`](Circuit::step) returns
    /// [`SimError::Deadlock`] after `cycles` consecutive transfer-free
    /// cycles. Disarm with `None`.
    pub fn set_deadlock_watchdog(&mut self, cycles: Option<u64>) {
        self.watchdog = cycles;
        self.idle_cycles = 0;
    }

    /// Evaluation-order index of the component named `name`, if any.
    fn component_index(&self, name: &str) -> Option<usize> {
        (0..self.components.len()).find(|&i| self.components.get(i).name() == name)
    }

    /// Immutable access to a component by instance name.
    pub fn component(&self, name: &str) -> Option<&dyn Component<T>> {
        self.component_index(name).map(|i| self.components.get(i))
    }

    /// Typed immutable access to a component by instance name.
    ///
    /// Returns `None` if no component has that name *or* it is not a `C`.
    pub fn get<C: Component<T> + 'static>(&self, name: &str) -> Option<&C> {
        self.component(name)
            .and_then(|c| c.as_any().downcast_ref::<C>())
    }

    /// Typed mutable access to a component by instance name.
    pub fn get_mut<C: Component<T> + 'static>(&mut self, name: &str) -> Option<&mut C> {
        let i = self.component_index(name)?;
        self.components.get_mut(i).as_any_mut().downcast_mut::<C>()
    }

    /// Names of all components, in evaluation order.
    pub fn component_names(&self) -> Vec<String> {
        (0..self.components.len())
            .map(|i| self.components.get(i).name().to_string())
            .collect()
    }

    /// Structural class of every component, in evaluation order (see
    /// [`Component::netlist_kind`]).
    pub fn component_kinds(&self) -> Vec<crate::netlist::NetlistNodeKind> {
        (0..self.components.len())
            .map(|i| self.components.get(i).netlist_kind())
            .collect()
    }

    /// Name of channel `ch`.
    pub fn channel_name(&self, ch: ChannelId) -> &str {
        &self.channels[ch.0].spec.name
    }

    /// Thread count of channel `ch`.
    pub fn channel_threads(&self, ch: ChannelId) -> usize {
        self.channels[ch.0].spec.threads
    }

    /// All channel ids, in creation order.
    pub fn channel_ids(&self) -> Vec<ChannelId> {
        (0..self.channels.len()).map(ChannelId).collect()
    }

    /// Evaluation-order index of the component driving channel `ch`.
    pub fn channel_driver(&self, ch: ChannelId) -> usize {
        self.driver[ch.0]
    }

    /// Evaluation-order index of the component reading channel `ch`.
    pub fn channel_reader(&self, ch: ChannelId) -> usize {
        self.reader[ch.0]
    }

    /// Simulates one clock cycle.
    ///
    /// # Errors
    ///
    /// * [`SimError::CombinationalLoop`] — the handshake network did not
    ///   settle within the iteration cap (only reachable through a damped
    ///   feedback loop whose hysteresis guarantee is broken; all-strict
    ///   cycles are already rejected at build time);
    /// * [`SimError::ChannelInvariant`] — two threads asserted valid on the
    ///   same channel in the same cycle;
    /// * [`SimError::MissingData`] — a producer asserted valid without data;
    /// * [`SimError::Component`] — a component latched a protocol fault at
    ///   the clock edge;
    /// * [`SimError::Deadlock`] — the watchdog fired (if armed).
    pub fn step(&mut self) -> Result<CycleReport, SimError> {
        self.step_collect(true)
    }

    /// The cycle loop body. `collect` controls whether fired transfers
    /// are materialised into the report — the batch drivers
    /// ([`run`](Circuit::run), [`run_until`](Circuit::run_until)) pass
    /// `false` and skip the per-transfer record pushes entirely, since
    /// they discard the report anyway. Statistics, traces, invariant
    /// checks and the watchdog behave identically either way.
    fn step_collect(&mut self, collect: bool) -> Result<CycleReport, SimError> {
        // Phase 1: combinational fixed point. Signals are *warm-started*
        // from the previous cycle's settled values: every component
        // re-drives all signals it owns whenever it is evaluated (the
        // total-drive rule), so stale values cannot survive to the fixed
        // point, and the previous cycle is usually an excellent initial
        // guess — both faster and closer to how real combinational logic
        // leaves the previous cycle's voltages on the wires.
        //
        // Round 1 is always a full sweep (eval may depend on the cycle
        // number — sink ready policies, source release times). Subsequent
        // rounds depend on the mode: the exhaustive oracle re-sweeps
        // everything until a sweep changes nothing, the event-driven
        // kernel drains the dirty worklist. Each round claims a
        // component's wake flag *before* evaluating it, so a wake issued
        // by an earlier component in the same round is serviced in-round
        // (the sweep stays Gauss–Seidel in component index order) while a
        // wake aimed at an already-evaluated component carries over to
        // the next round.
        let n = self.components.len();
        let max_rounds = 2 * n + 8;
        let exhaustive = self.mode == EvalMode::Exhaustive;
        let mut rounds = 0usize;
        let mut evals = 0usize;
        let mut stable = false;
        let mut op_evals = [0u64; FusedOpKind::COUNT];
        self.woke.clear();
        let settle_start = self.time_settle.then(std::time::Instant::now);
        while rounds < max_rounds {
            let full = exhaustive || rounds == 0;
            let mut changed = false;
            match &mut self.components {
                ComponentStore::Boxed(comps) => {
                    for (i, comp) in comps.iter_mut().enumerate() {
                        if !full && !self.woke.get(i) {
                            continue;
                        }
                        self.woke.set(i, false);
                        let mut ctx = EvalCtx {
                            channels: &mut self.channels,
                            woke: &mut self.woke,
                            changed: &mut changed,
                            current: i,
                            driver: &self.driver,
                            reader: &self.reader,
                            listen_valid: &self.listen_valid,
                            listen_ready: &self.listen_ready,
                            feedback: &self.feedback,
                            cycle: self.cycle,
                        };
                        comp.eval(&mut ctx);
                        evals += 1;
                    }
                }
                ComponentStore::Fused(table) => {
                    // One dynamic call for the whole round; the table
                    // claims wake flags and counts evals exactly like the
                    // interpreted loop above.
                    let mut ctx = SweepCtx {
                        channels: &mut self.channels,
                        woke: &mut self.woke,
                        changed: &mut changed,
                        driver: &self.driver,
                        reader: &self.reader,
                        listen_valid: &self.listen_valid,
                        listen_ready: &self.listen_ready,
                        feedback: &self.feedback,
                        cycle: self.cycle,
                    };
                    evals += table.sweep(&mut ctx, full, &mut op_evals);
                }
            }
            rounds += 1;
            // The cheap round-count test goes first: it is false on every
            // healthy cycle, so the (comparatively expensive) environment
            // lookup never runs on the hot path.
            if rounds + 6 >= max_rounds && std::env::var_os("ELASTIC_SIM_DEBUG_SETTLE").is_some() {
                let dump: Vec<String> = self
                    .channels
                    .iter()
                    .map(|ch| format!("{}:v{:?}r{:?}", ch.spec.name, ch.valid, ch.ready))
                    .collect();
                eprintln!("settle round {rounds}: {}", dump.join(" "));
            }
            // Convergence: the oracle stops when a sweep changes nothing
            // (the historical criterion); the dirty-set kernel stops as
            // soon as the worklist is empty — every component whose
            // inputs changed has been re-evaluated, so the network is at
            // a fixed point even if this round did change signals.
            let converged = if exhaustive {
                !changed
            } else {
                !self.woke.any()
            };
            if converged {
                stable = true;
                break;
            }
        }
        let settle_elapsed = settle_start.map(|t0| t0.elapsed());
        if !stable {
            return Err(SimError::CombinationalLoop {
                cycle: self.cycle,
                iterations: rounds,
            });
        }
        let kernel = self.stats.kernel_mut();
        if let Some(elapsed) = settle_elapsed {
            kernel.settle_nanos += elapsed.as_nanos() as u64;
        }
        kernel.component_evals += evals as u64;
        kernel.settle_rounds += rounds as u64;
        kernel.components_skipped += (rounds * n - evals) as u64;
        kernel.stepped_cycles += 1;
        if rounds == 1 {
            kernel.single_sweep_cycles += 1;
        }
        // Re-stamped every cycle (rather than once at construction) so it
        // survives `reset_stats` after a warm-up window.
        kernel.rank_width = kernel.rank_width.max(self.rank_width);
        kernel.settle_round_hist[rounds.min(8) - 1] += 1;
        for (acc, delta) in kernel.fused_op_evals.iter_mut().zip(op_evals.iter()) {
            *acc += *delta;
        }

        // Phase 2: protocol invariant checks — word-level popcounts; the
        // per-thread index list is materialised only on the error path.
        for ch in &self.channels {
            match ch.valid.count_ones() {
                0 | 1 => {}
                _ => {
                    return Err(SimError::ChannelInvariant {
                        cycle: self.cycle,
                        channel: ch.spec.name.clone(),
                        threads: ch.valid.iter_ones().collect(),
                    });
                }
            }
            if let Some(t) = ch.valid.first_one() {
                if ch.data.is_none() {
                    return Err(SimError::MissingData {
                        cycle: self.cycle,
                        channel: ch.spec.name.clone(),
                        thread: t,
                    });
                }
            }
        }

        // Phase 3: collect transfers, statistics, trace. After phase 2,
        // `valid.any()` implies exactly one asserted thread.
        let mut transfers = Vec::new();
        let mut fired = 0usize;
        let mut any_valid = false;
        for (ci, ch) in self.channels.iter().enumerate() {
            let cs = self.stats.channel_mut(ChannelId(ci));
            let Some(t) = ch.valid.first_one() else {
                // An idle cycle ends any backpressure streak in progress.
                cs.stall_streak = 0;
                continue;
            };
            any_valid = true;
            cs.busy_cycles += 1;
            if ch.ready.get(t) {
                cs.transfers[t] += 1;
                cs.stall_streak = 0;
                fired += 1;
                if collect {
                    transfers.push(Transfer {
                        channel: ChannelId(ci),
                        thread: t,
                    });
                }
            } else {
                cs.stall_cycles[t] += 1;
                cs.record_stall_occupancy();
            }
        }
        self.stats.record_cycle();

        if let Some(recorder) = &mut self.recorder {
            let channels = self
                .channels
                .iter()
                .map(|ch| {
                    let t = ch.single_valid();
                    ChannelTrace {
                        valid_thread: t,
                        label: ch.data.as_ref().map(|d| d.label()),
                        fired: t.is_some_and(|t| ch.ready.get(t)),
                    }
                })
                .collect();
            // Slots are keyed by component index — the recorder's name
            // table resolves them at render time, so the hot path never
            // clones a component name.
            let mut slots = Vec::new();
            for i in 0..self.components.len() {
                let s = self.components.get(i).slots();
                if !s.is_empty() {
                    slots.push((i, s));
                }
            }
            let record = CycleTrace {
                cycle: self.cycle,
                channels,
                slots,
            };
            recorder.push(record);
        }

        // Watchdog: a cycle counts as "stuck" only when some token is
        // offered (a valid is asserted) yet nothing moves. A circuit with
        // no valid tokens at all is quiescent, not deadlocked.
        self.quiescent = fired == 0 && !any_valid;
        if fired > 0 {
            self.last_progress = Some(self.cycle);
        }
        if fired == 0 && any_valid {
            self.idle_cycles += 1;
        } else {
            self.idle_cycles = 0;
        }
        if let Some(limit) = self.watchdog {
            if self.idle_cycles >= limit {
                // Name the culprits: every (channel, thread) whose token
                // is being offered (valid high) without acceptance
                // (ready low) in the settled final cycle.
                let stalled = self
                    .channels
                    .iter()
                    .flat_map(|ch| {
                        ch.valid
                            .iter_ones()
                            .filter(|&t| !ch.ready.get(t))
                            .map(|t| (ch.spec.name.clone(), t))
                    })
                    .collect();
                return Err(SimError::Deadlock {
                    cycle: self.cycle,
                    idle_cycles: self.idle_cycles,
                    last_progress: self.last_progress,
                    stalled,
                });
            }
        }

        // Phase 4: clock edge, then collect any fault a component latched
        // while processing it (the typed replacement for in-component
        // panics).
        let tick_ctx = TickCtx {
            channels: &self.channels,
            cycle: self.cycle,
        };
        match &mut self.components {
            ComponentStore::Boxed(comps) => {
                for c in comps.iter_mut() {
                    c.tick(&tick_ctx);
                }
                for c in comps.iter_mut() {
                    if let Some(error) = c.take_fault() {
                        return Err(SimError::Component {
                            cycle: self.cycle,
                            component: c.name().to_string(),
                            error,
                        });
                    }
                }
            }
            ComponentStore::Fused(table) => {
                table.tick_all(&tick_ctx);
                if let Some((i, error)) = table.take_faults() {
                    return Err(SimError::Component {
                        cycle: self.cycle,
                        component: table.component(i).name().to_string(),
                        error,
                    });
                }
            }
        }

        let report = CycleReport {
            cycle: self.cycle,
            transfers,
            settle_iterations: rounds,
            evals,
        };
        self.cycle += 1;
        Ok(report)
    }

    /// True when the last stepped cycle completed with no transfer and no
    /// asserted `valid` anywhere — the network holds no visible token.
    pub fn is_quiescent(&self) -> bool {
        self.quiescent
    }

    /// The earliest future component event: `Some(None)` when every
    /// component is purely reactive (idle forever), `Some(Some(c))` for
    /// the earliest scheduled cycle, `None` when some component is
    /// time-sensitive every cycle and the fast-path must stay off.
    fn next_component_event(&self) -> Option<Option<u64>> {
        let mut earliest: Option<u64> = None;
        for i in 0..self.components.len() {
            match self.components.get(i).next_event(self.cycle) {
                NextEvent::EveryCycle => return None,
                NextEvent::Idle => {}
                NextEvent::At(at) => {
                    earliest = Some(earliest.map_or(at, |e| e.min(at)));
                }
            }
        }
        Some(earliest)
    }

    /// Quiescence fast-path: advances the clock directly to the next
    /// self-scheduled component event — or to `limit` (exclusive end of
    /// the simulation window) when every component is idle — without
    /// evaluating anything. A cycle can only be skipped when the network
    /// is [quiescent](Circuit::is_quiescent): with no `valid` asserted
    /// anywhere, no transfer can fire and no reactive component can
    /// change state, so the skipped cycles are provably empty. Skipped
    /// cycles still count toward [`Stats::cycles`] (and are tallied in
    /// [`KernelStats::quiesced_cycles`](crate::KernelStats)).
    ///
    /// Returns the number of cycles skipped (0 when the last cycle was
    /// not quiescent, a trace is being recorded, or a component reports
    /// [`NextEvent::EveryCycle`]).
    pub fn fast_forward(&mut self, limit: u64) -> u64 {
        if !self.quiescent || self.recorder.is_some() || self.cycle >= limit {
            return 0;
        }
        let target = match self.next_component_event() {
            None => return 0,
            Some(None) => limit,
            Some(Some(at)) => at.min(limit).max(self.cycle),
        };
        let skipped = target - self.cycle;
        if skipped > 0 {
            self.cycle = target;
            self.stats.record_quiesced(skipped);
        }
        skipped
    }

    /// Simulates `cycles` clock cycles.
    ///
    /// Quiescent stretches (no token anywhere) are fast-forwarded to the
    /// next scheduled component event when tracing is off; the skipped
    /// cycles still count toward the simulated total, so the observable
    /// end state matches stepping cycle by cycle. Unlike
    /// [`step`](Circuit::step), no per-transfer records are collected —
    /// the batch loop allocates nothing per cycle.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`step`](Circuit::step).
    pub fn run(&mut self, cycles: u64) -> Result<(), SimError> {
        let end = self.cycle.saturating_add(cycles);
        while self.cycle < end {
            self.step_collect(false)?;
            if self.quiescent {
                self.fast_forward(end);
            }
        }
        Ok(())
    }

    /// Steps until `pred` holds (checked *before* each step) or `max_cycles`
    /// elapse. Returns `true` if the predicate was satisfied.
    ///
    /// Quiescent stretches are fast-forwarded exactly as in
    /// [`run`](Circuit::run); the predicate is re-checked after each jump
    /// (it cannot change during skipped cycles, which by construction
    /// move no token and touch no component state).
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`step`](Circuit::step).
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut pred: impl FnMut(&Self) -> bool,
    ) -> Result<bool, SimError> {
        let end = self.cycle.saturating_add(max_cycles);
        while self.cycle < end {
            if pred(self) {
                return Ok(true);
            }
            self.step_collect(false)?;
            if self.quiescent {
                self.fast_forward(end);
            }
        }
        Ok(pred(self))
    }
}

impl<T: Token> std::fmt::Debug for Circuit<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Circuit")
            .field("cycle", &self.cycle)
            .field("mode", &self.mode)
            .field("components", &self.component_names())
            .field(
                "channels",
                &self
                    .channels
                    .iter()
                    .map(|c| &c.spec.name)
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}
