//! Mechanism side of the **fused kernel backend**.
//!
//! The interpreted settle loop dispatches every evaluation through a
//! `Box<dyn Component>` virtual call. After elaboration, though, the
//! component sequence and the levelized rank schedule are fully known —
//! so the whole sweep can be *compiled* into a flat op table executed as
//! one linear `match`-dispatch pass per settle round. This module defines
//! only the machinery the kernel needs to host such a table:
//!
//! * [`KernelBackend`] — the `Interpreted`/`Fused` axis selected on
//!   `CircuitBuilder` (and surfaced by higher-level configs);
//! * [`FusedTable`] — the object-safe contract a lowered op table
//!   implements: **one** dynamic call per settle round
//!   ([`sweep`](FusedTable::sweep)), plus static-dispatch clock-edge and
//!   fault-scan passes, and per-index component accessors so
//!   introspection (`Circuit::get`, tracing, reset) works unchanged;
//! * [`SweepCtx`] — the split-borrow view of the circuit a sweep runs
//!   against, bridging to [`EvalCtx`] per op;
//! * [`FusedOpKind`] — the dense op-class label used for per-op eval
//!   counters in [`KernelStats`](crate::KernelStats);
//! * [`FuseFn`] — the plain function pointer through which a *policy*
//!   crate (the lowering lives in `elastic-synth`, which knows the
//!   concrete primitive types) injects its compiler into this crate's
//!   builder without inverting the dependency graph.
//!
//! The concrete op enum and the lowering itself live in
//! `elastic_synth::lower` / `elastic_synth::compile`; see
//! `docs/kernel.md` § "Fused settle kernel" for the contract.

use crate::channel::{ChannelId, ChannelState};
use crate::circuit::{EvalCtx, TickCtx};
use crate::component::Component;
use crate::error::ProtocolError;
use crate::mask::ThreadMask;
use crate::token::Token;

/// Which settle-kernel implementation executes component evaluations.
///
/// Both backends reach the same fixed point with the same wake
/// semantics; they differ only in dispatch cost. The interpreted kernel
/// is the default and the reference; the fused kernel requires a
/// lowering function ([`FuseFn`]) and silently falls back to interpreted
/// when none is installed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum KernelBackend {
    /// Dispatch every eval through `Box<dyn Component>` (default).
    #[default]
    Interpreted,
    /// Execute a pre-lowered [`FusedTable`]: one dynamic call per settle
    /// round, branch-predictable `match` dispatch per op inside, no
    /// per-eval allocation.
    Fused,
}

/// Dense label for one fused op class — the axis of the per-op eval
/// counters in [`KernelStats`](crate::KernelStats). One variant per
/// `IrNodeKind` primitive; `Custom` covers boxed fallback nodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FusedOpKind {
    /// Token source.
    Source,
    /// Token sink.
    Sink,
    /// Single-thread elastic buffer.
    Eb,
    /// Full MEB (`2·S` slots).
    MebFull,
    /// Reduced MEB (`S + 1` slots).
    MebReduced,
    /// FIFO MEB.
    MebFifo,
    /// M-Fork.
    Fork,
    /// M-Join.
    Join,
    /// M-Branch.
    Branch,
    /// M-Merge.
    Merge,
    /// Thread barrier.
    Barrier,
    /// Variable-latency unit.
    VarLatency,
    /// Stateless transform.
    Transform,
    /// Boxed fallback (`IrNodeKind::Custom` or any unrecognised
    /// component) — still evaluated through its vtable.
    Custom,
}

impl FusedOpKind {
    /// Number of op classes (the length of the per-op counter array).
    pub const COUNT: usize = 14;

    /// Every op class, in counter-array order.
    pub const ALL: [FusedOpKind; FusedOpKind::COUNT] = [
        FusedOpKind::Source,
        FusedOpKind::Sink,
        FusedOpKind::Eb,
        FusedOpKind::MebFull,
        FusedOpKind::MebReduced,
        FusedOpKind::MebFifo,
        FusedOpKind::Fork,
        FusedOpKind::Join,
        FusedOpKind::Branch,
        FusedOpKind::Merge,
        FusedOpKind::Barrier,
        FusedOpKind::VarLatency,
        FusedOpKind::Transform,
        FusedOpKind::Custom,
    ];

    /// Short stable label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            FusedOpKind::Source => "source",
            FusedOpKind::Sink => "sink",
            FusedOpKind::Eb => "eb",
            FusedOpKind::MebFull => "meb_full",
            FusedOpKind::MebReduced => "meb_reduced",
            FusedOpKind::MebFifo => "meb_fifo",
            FusedOpKind::Fork => "fork",
            FusedOpKind::Join => "join",
            FusedOpKind::Branch => "branch",
            FusedOpKind::Merge => "merge",
            FusedOpKind::Barrier => "barrier",
            FusedOpKind::VarLatency => "varlat",
            FusedOpKind::Transform => "transform",
            FusedOpKind::Custom => "custom",
        }
    }
}

/// A lowering function: consumes the builder's rank-permuted component
/// vector and produces the fused op table that will execute it.
///
/// A plain `fn` pointer (hence `Copy` + `Debug`) so configuration
/// structs can carry it through `derive`d impls, and so crates *below*
/// the lowering crate in the dependency graph (e.g. the pipeline
/// harness in `elastic-core`) can accept one opaquely.
pub type FuseFn<T> = fn(Vec<Box<dyn Component<T>>>) -> Box<dyn FusedTable<T>>;

/// Split-borrow view of the circuit during one settle round of the fused
/// kernel. Wraps the same channel/wake/listen state the interpreted loop
/// uses; [`eval_ctx`](SweepCtx::eval_ctx) is the only way external code
/// can mint an [`EvalCtx`], which keeps signal-ownership enforcement
/// inside this crate.
pub struct SweepCtx<'a, T: Token> {
    pub(crate) channels: &'a mut [ChannelState<T>],
    pub(crate) woke: &'a mut ThreadMask,
    pub(crate) changed: &'a mut bool,
    pub(crate) driver: &'a [usize],
    pub(crate) reader: &'a [usize],
    pub(crate) listen_valid: &'a [bool],
    pub(crate) listen_ready: &'a [bool],
    pub(crate) feedback: &'a [bool],
    pub(crate) cycle: u64,
}

impl<'a, T: Token> SweepCtx<'a, T> {
    /// Whether component `i` is marked dirty this round.
    #[inline]
    pub fn is_woke(&self, i: usize) -> bool {
        self.woke.get(i)
    }

    /// Claims component `i`'s wake flag (clears it) — must be called
    /// *before* evaluating the op, exactly like the interpreted loop, so
    /// wakes issued mid-eval carry over to the next round.
    #[inline]
    pub fn claim(&mut self, i: usize) {
        self.woke.set(i, false);
    }

    /// The evaluation context for component `i`, with the same ownership
    /// and wake semantics as the interpreted kernel.
    #[inline]
    pub fn eval_ctx(&mut self, i: usize) -> EvalCtx<'_, T> {
        EvalCtx {
            channels: &mut *self.channels,
            woke: &mut *self.woke,
            changed: &mut *self.changed,
            current: i,
            driver: self.driver,
            reader: self.reader,
            listen_valid: self.listen_valid,
            listen_ready: self.listen_ready,
            feedback: self.feedback,
            cycle: self.cycle,
        }
    }

    /// Thread count of channel `ch` (for sizing scratch masks).
    pub fn threads(&self, ch: ChannelId) -> usize {
        self.channels[ch.0].spec.threads
    }

    /// Whether any channel of the circuit sits on a combinational
    /// feedback cycle. With feedback present the hysteretic anti-swap
    /// damping makes the settle trajectory order-sensitive, so lowered
    /// tables must not re-order evaluation (see [`FusedTable::sweep`]);
    /// component fast paths use the same signal per channel via
    /// [`EvalCtx::in_feedback`].
    pub fn any_feedback(&self) -> bool {
        self.feedback.iter().any(|&f| f)
    }

    /// Runs one settle round's op scan with a **single reused**
    /// [`EvalCtx`]: the skip-unless-woken test, the claim-before-eval
    /// wake consumption and the current-component bookkeeping happen
    /// inline, and `eval` is called once per scheduled op (in rank
    /// order, `0..n`) with the context already positioned on it.
    /// Building the borrow bundle once per round instead of once per op
    /// keeps the per-evaluation setup to one index store — the tables'
    /// preferred sweep shape. Returns the number of evaluations
    /// performed.
    #[inline]
    pub fn drain<F>(&mut self, full: bool, mut eval: F) -> usize
    where
        F: FnMut(usize, &mut EvalCtx<'_, T>),
    {
        let mut evals = 0;
        let n = self.woke.threads();
        let mut ectx = EvalCtx {
            channels: &mut *self.channels,
            woke: &mut *self.woke,
            changed: &mut *self.changed,
            current: 0,
            driver: self.driver,
            reader: self.reader,
            listen_valid: self.listen_valid,
            listen_ready: self.listen_ready,
            feedback: self.feedback,
            cycle: self.cycle,
        };
        for i in 0..n {
            if !full && !ectx.woke.get(i) {
                continue;
            }
            // Claim before eval, exactly like the interpreted loop, so
            // wakes issued mid-eval carry over to the next round.
            ectx.woke.set(i, false);
            ectx.current = i;
            eval(i, &mut ectx);
            evals += 1;
        }
        evals
    }
}

/// The contract a lowered op table implements so the kernel can execute
/// it. Implemented by `elastic_synth::lower::OpTable`; the kernel holds
/// it as `Box<dyn FusedTable<T>>` and pays exactly one dynamic call per
/// settle round plus one per clock edge.
///
/// Implementations must preserve the interpreted loop's semantics
/// exactly: iterate ops in storage (rank) order — the interpreted
/// kernel's order, already levelized so consumers precede the producers
/// that listen to their `ready` commits — skip non-woken ops on partial
/// rounds, claim the wake flag before evaluating, and count every
/// evaluation. Re-ordering is not an optimisation surface: the rank
/// schedule settles busy acyclic pipelines in a single round, and on
/// feedback cycles the hysteretic damping makes the trajectory
/// order-sensitive, so any other order is slower, unfaithful, or both.
pub trait FusedTable<T: Token>: Send {
    /// Number of ops (equals the component count).
    fn len(&self) -> usize;

    /// Whether the table is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Executes one settle round: a full sweep when `full`, otherwise
    /// only ops whose wake flag is set. Returns the number of
    /// evaluations performed and tallies them per op class into
    /// `op_evals`.
    fn sweep(
        &mut self,
        ctx: &mut SweepCtx<'_, T>,
        full: bool,
        op_evals: &mut [u64; FusedOpKind::COUNT],
    ) -> usize;

    /// Clock edge: ticks every op, in storage order, with static
    /// dispatch.
    fn tick_all(&mut self, ctx: &TickCtx<'_, T>);

    /// Scans ops in storage order for a latched protocol fault; returns
    /// the first `(component index, fault)` found.
    fn take_faults(&mut self) -> Option<(usize, ProtocolError)>;

    /// Borrows op `i` as a plain component (name, slots, downcasts,
    /// next-event scheduling — every cold path reuses the trait
    /// surface).
    fn component(&self, i: usize) -> &dyn Component<T>;

    /// Mutably borrows op `i` as a plain component (reset,
    /// `Circuit::get_mut` reconfiguration).
    fn component_mut(&mut self, i: usize) -> &mut dyn Component<T>;
}
