//! Criterion bench: the multithreaded elastic processor running the
//! benchmark workloads to halt, across thread counts and MEB kinds
//! (E-X4 harness). The measured quantity is wall time per full program
//! run; the run's IPC is the paper-relevant figure printed by the
//! `processor_demo` example.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elastic_core::MebKind;
use elastic_proc::{programs, Cpu, CpuConfig};

fn bench_sum_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_sum_loop");
    for threads in [1usize, 4, 8] {
        for kind in [MebKind::Full, MebKind::Reduced] {
            group.bench_with_input(
                BenchmarkId::new(kind.to_string(), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        let mut cpu = Cpu::from_asm(
                            CpuConfig::new(threads).with_meb(kind),
                            programs::SUM_LOOP,
                        )
                        .expect("assembles");
                        cpu.run_to_halt(200_000).expect("halts").ipc
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_workloads_8t");
    group.sample_size(10);
    for (name, source, _) in programs::all() {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cpu = Cpu::from_asm(CpuConfig::new(8), source).expect("assembles");
                cpu.run_to_halt(2_000_000).expect("halts").ipc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sum_loop, bench_workloads);
criterion_main!(benches);
