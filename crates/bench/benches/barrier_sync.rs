//! Criterion bench: barrier synchronization — cost of repeated barrier
//! phases as the thread count grows (the primitive behind the MD5
//! round-synchronization, Sec. IV-C).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elastic_core::{ArbiterKind, Barrier, MebKind};
use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source, Tagged};

/// Runs `phases` barrier phases over `threads` threads; returns cycles.
fn run_barrier(threads: usize, phases: u64) -> u64 {
    let mut b = CircuitBuilder::<Tagged>::new();
    let x = b.channel("x", threads);
    let m = b.channel("m", threads);
    let y = b.channel("y", threads);
    let mut src = Source::new("src", x, threads);
    for t in 0..threads {
        src.extend(t, (0..phases).map(|p| Tagged::new(t, p, p)));
    }
    b.add(src);
    b.add_boxed(MebKind::Reduced.build_with::<Tagged>(
        "meb",
        x,
        m,
        threads,
        ArbiterKind::RoundRobin,
    ));
    b.add(Barrier::new("bar", m, y, threads));
    b.add(Sink::with_capture("snk", y, threads, ReadyPolicy::Always));
    let mut circuit = b.build().expect("barrier bench circuit is well-formed");
    let expected = phases * threads as u64;
    circuit
        .run_until(200 + phases * (threads as u64 + 8) * 4, |c| {
            c.stats().total_transfers(y) >= expected
        })
        .expect("barrier phases complete");
    circuit.cycle()
}

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_phases");
    const PHASES: u64 = 50;
    group.throughput(Throughput::Elements(PHASES));
    for threads in [2usize, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| run_barrier(threads, PHASES)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_barrier);
criterion_main!(benches);
