//! Synthesizable SystemVerilog emitters for the paper's primitives.
//!
//! The cycle-accurate Rust components in this crate are *models*; this
//! module emits the corresponding parameterized RTL — the artifact form
//! in which the paper's primitives would ship to an FPGA flow. The
//! generated modules implement exactly the FSMs the models simulate:
//!
//! * [`elastic_buffer_verilog`] — the 2-slot EB with the EMPTY/HALF/FULL
//!   control of Sec. II;
//! * [`rr_arbiter_verilog`] — a rotating-priority arbiter;
//! * [`full_meb_verilog`] — one EB per thread + arbiter + mux (Fig. 4);
//! * [`reduced_meb_verilog`] — per-thread mains + the dynamically shared
//!   auxiliary register with gated HALF→FULL (Fig. 6);
//! * [`barrier_verilog`] — the sense-reversing thread barrier (Fig. 8).
//!
//! The emitters are deterministic text generators; [`rtl_package`]
//! bundles everything into one file. Structural sanity (balanced
//! constructs, port/identifier usage) is covered by tests; the RTL has
//! not been through a synthesis flow — treat it as the starting point the
//! paper's Table I assumes, not as signed-off IP.

use std::fmt::Write as _;

/// Emits the 2-slot single-thread elastic buffer.
pub fn elastic_buffer_verilog() -> String {
    r#"// Baseline 2-slot elastic buffer (EMPTY/HALF/FULL control, Sec. II).
module elastic_buffer #(
    parameter WIDTH = 32
) (
    input  wire             clk,
    input  wire             rst,
    // upstream
    input  wire             vin,
    output wire             rout,
    input  wire [WIDTH-1:0] data_in,
    // downstream
    output wire             vout,
    input  wire             rin,
    output wire [WIDTH-1:0] data_out
);
    localparam EMPTY = 2'd0, HALF = 2'd1, FULL = 2'd2;

    reg [1:0]       state;
    reg [WIDTH-1:0] main_q;
    reg [WIDTH-1:0] aux_q;

    wire enq = vin  && rout;
    wire deq = vout && rin;

    assign vout     = (state != EMPTY);
    assign rout     = (state != FULL);
    assign data_out = main_q;

    always @(posedge clk) begin
        if (rst) begin
            state <= EMPTY;
        end else begin
            case (state)
                EMPTY:   if (enq)         state <= HALF;
                HALF:    if (enq && !deq) state <= FULL;
                         else if (!enq && deq) state <= EMPTY;
                FULL:    if (deq)         state <= HALF;
                default: state <= EMPTY;
            endcase
            if (deq)                     main_q <= aux_q;
            if (enq && state == EMPTY)   main_q <= data_in;
            else if (enq && deq && state == HALF) main_q <= data_in;
            else if (enq)                aux_q  <= data_in;
        end
    end
endmodule
"#
    .to_string()
}

/// Emits a rotating-priority (round-robin) arbiter.
pub fn rr_arbiter_verilog() -> String {
    r#"// Rotating-priority arbiter: grants the first request at or after
// the pointer; the pointer moves one past the last grant.
module rr_arbiter #(
    parameter N = 8
) (
    input  wire          clk,
    input  wire          rst,
    input  wire [N-1:0]  req,
    input  wire          commit,   // high when the granted transfer fires
    output reg  [N-1:0]  grant
);
    reg [$clog2(N)-1:0] ptr;

    integer i;
    reg [2*N-1:0] dbl;
    always @* begin
        grant = {N{1'b0}};
        dbl   = {req, req} >> ptr;
        for (i = N - 1; i >= 0; i = i - 1)
            if (dbl[i]) grant = {{(N-1){1'b0}}, 1'b1} << ((ptr + i) % N);
    end

    integer g;
    always @(posedge clk) begin
        if (rst) begin
            ptr <= {$clog2(N){1'b0}};
        end else if (commit) begin
            for (g = 0; g < N; g = g + 1)
                if (grant[g]) ptr <= (g + 1) % N;
        end
    end
endmodule
"#
    .to_string()
}

/// Emits the full MEB (Fig. 4): one elastic buffer per thread behind an
/// arbiter and an output multiplexer.
pub fn full_meb_verilog() -> String {
    r#"// Full multithreaded elastic buffer (Fig. 4): one 2-slot EB per
// thread, output arbitration over threads that are ready downstream.
module full_meb #(
    parameter THREADS = 8,
    parameter WIDTH   = 32
) (
    input  wire               clk,
    input  wire               rst,
    input  wire [THREADS-1:0] vin,
    output wire [THREADS-1:0] rout,
    input  wire [WIDTH-1:0]   data_in,
    output wire [THREADS-1:0] vout,
    input  wire [THREADS-1:0] rin,
    output reg  [WIDTH-1:0]   data_out
);
    wire [THREADS-1:0] eb_vout;
    wire [THREADS-1:0] eb_rin;
    wire [WIDTH-1:0]   eb_data [0:THREADS-1];

    genvar t;
    generate
        for (t = 0; t < THREADS; t = t + 1) begin : per_thread
            elastic_buffer #(.WIDTH(WIDTH)) eb (
                .clk(clk), .rst(rst),
                .vin(vin[t]), .rout(rout[t]), .data_in(data_in),
                .vout(eb_vout[t]), .rin(eb_rin[t]), .data_out(eb_data[t])
            );
        end
    endgenerate

    // Request = data available AND downstream ready for that thread.
    wire [THREADS-1:0] req = eb_vout & rin;
    wire [THREADS-1:0] grant;
    wire               fire = |(grant & rin);
    rr_arbiter #(.N(THREADS)) arb (
        .clk(clk), .rst(rst), .req(req), .commit(fire), .grant(grant)
    );

    assign vout  = grant;
    assign eb_rin = grant & rin;

    integer i;
    always @* begin
        data_out = {WIDTH{1'b0}};
        for (i = 0; i < THREADS; i = i + 1)
            if (grant[i]) data_out = eb_data[i];
    end
endmodule
"#
    .to_string()
}

/// Emits the reduced MEB (Fig. 6): per-thread main registers plus one
/// dynamically shared auxiliary register with the gated HALF→FULL
/// transition.
pub fn reduced_meb_verilog() -> String {
    r#"// Reduced multithreaded elastic buffer (Fig. 6): S main registers
// plus ONE shared auxiliary register; only one thread may be FULL.
module reduced_meb #(
    parameter THREADS = 8,
    parameter WIDTH   = 32
) (
    input  wire               clk,
    input  wire               rst,
    input  wire [THREADS-1:0] vin,
    output wire [THREADS-1:0] rout,
    input  wire [WIDTH-1:0]   data_in,
    output wire [THREADS-1:0] vout,
    input  wire [THREADS-1:0] rin,
    output reg  [WIDTH-1:0]   data_out
);
    localparam EMPTY = 2'd0, HALF = 2'd1, FULL = 2'd2;

    reg [1:0]               state [0:THREADS-1];
    reg [WIDTH-1:0]         main_q [0:THREADS-1];
    reg [WIDTH-1:0]         shared_q;
    reg                     shared_full;
    reg [$clog2(THREADS)-1:0] shared_owner;

    // Upstream ready per thread: EMPTY always accepts into the private
    // main; HALF accepts only while the shared register is free ("as
    // long as no thread is in the FULL state"); FULL never accepts.
    genvar t;
    generate
        for (t = 0; t < THREADS; t = t + 1) begin : ready_gen
            assign rout[t] = (state[t] == EMPTY) ||
                             (state[t] == HALF && !shared_full);
        end
    endgenerate

    // Output arbitration: non-empty threads that are ready downstream.
    wire [THREADS-1:0] nonempty;
    generate
        for (t = 0; t < THREADS; t = t + 1) begin : occ_gen
            assign nonempty[t] = (state[t] != EMPTY);
        end
    endgenerate
    wire [THREADS-1:0] req = nonempty & rin;
    wire [THREADS-1:0] grant;
    wire               fire = |(grant & rin);
    rr_arbiter #(.N(THREADS)) arb (
        .clk(clk), .rst(rst), .req(req), .commit(fire), .grant(grant)
    );
    assign vout = grant;

    integer i;
    always @* begin
        data_out = {WIDTH{1'b0}};
        for (i = 0; i < THREADS; i = i + 1)
            if (grant[i]) data_out = main_q[i];
    end

    // goFull(i): thread i claims the shared register this cycle.
    // goHalf(i): the FULL thread drains one item (refill main <= shared).
    integer k;
    always @(posedge clk) begin
        if (rst) begin
            shared_full <= 1'b0;
            for (k = 0; k < THREADS; k = k + 1) state[k] <= EMPTY;
        end else begin
            for (k = 0; k < THREADS; k = k + 1) begin
                // dequeue
                if (grant[k] && rin[k]) begin
                    if (state[k] == FULL) begin
                        main_q[k]   <= shared_q;   // refill from shared
                        state[k]    <= HALF;
                        shared_full <= 1'b0;
                    end else begin
                        state[k] <= EMPTY;
                    end
                end
                // enqueue (the channel carries one thread per cycle)
                if (vin[k] && rout[k]) begin
                    if (state[k] == EMPTY ||
                        (grant[k] && rin[k] && state[k] == HALF)) begin
                        main_q[k] <= data_in;
                        state[k]  <= HALF;
                    end else begin
                        // HALF -> FULL: claim the shared register.
                        shared_q     <= data_in;
                        shared_owner <= k[$clog2(THREADS)-1:0];
                        shared_full  <= 1'b1;
                        state[k]     <= FULL;
                    end
                end
            end
        end
    end
endmodule
"#
    .to_string()
}

/// Emits the sense-reversing thread barrier (Fig. 8).
pub fn barrier_verilog() -> String {
    r#"// Multithreaded elastic thread barrier (Fig. 8): IDLE/WAIT/FREE per
// thread, arrival counter, sense-reversing global go flag.
module mt_barrier #(
    parameter THREADS = 8
) (
    input  wire               clk,
    input  wire               rst,
    input  wire [THREADS-1:0] vin,
    output wire [THREADS-1:0] rout,
    output wire [THREADS-1:0] vout,
    input  wire [THREADS-1:0] rin
);
    localparam IDLE = 2'd0, WAIT = 2'd1, FREE = 2'd2;

    reg [1:0]              state [0:THREADS-1];
    reg [THREADS-1:0]      lgo;
    reg                    go;
    reg [$clog2(THREADS+1)-1:0] count;

    genvar t;
    generate
        for (t = 0; t < THREADS; t = t + 1) begin : pass_gen
            assign vout[t] = vin[t] && (state[t] == FREE);
            assign rout[t] = (state[t] == FREE) && rin[t];
        end
    endgenerate

    wire [THREADS-1:0] arriving;
    generate
        for (t = 0; t < THREADS; t = t + 1) begin : arr_gen
            assign arriving[t] = vin[t] && (state[t] == IDLE);
        end
    endgenerate
    wire any_arrival = |arriving;
    wire last_arrival = any_arrival && (count == THREADS - 1);

    integer k;
    always @(posedge clk) begin
        if (rst) begin
            go    <= 1'b0;
            count <= {$clog2(THREADS+1){1'b0}};
            for (k = 0; k < THREADS; k = k + 1) state[k] <= IDLE;
        end else begin
            for (k = 0; k < THREADS; k = k + 1) begin
                case (state[k])
                    IDLE: if (arriving[k]) begin
                        state[k] <= WAIT;
                        lgo[k]   <= go;
                    end
                    WAIT: if (lgo[k] != go) state[k] <= FREE;
                    FREE: if (vout[k] && rin[k]) state[k] <= IDLE;
                    default: state[k] <= IDLE;
                endcase
            end
            if (last_arrival) begin
                count <= {$clog2(THREADS+1){1'b0}};
                go    <= !go;
            end else if (any_arrival) begin
                count <= count + 1'b1;
            end
        end
    end
endmodule
"#
    .to_string()
}

/// Bundles every module into a single file, with a generation banner.
pub fn rtl_package() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// Generated by elastic-core — hardware primitives for the synthesis of\n\
         // multithreaded elastic systems (DATE 2014 reproduction).\n\
         // Modules: elastic_buffer, rr_arbiter, full_meb, reduced_meb, mt_barrier.\n"
    );
    out.push_str(&elastic_buffer_verilog());
    out.push('\n');
    out.push_str(&rr_arbiter_verilog());
    out.push('\n');
    out.push_str(&full_meb_verilog());
    out.push('\n');
    out.push_str(&reduced_meb_verilog());
    out.push('\n');
    out.push_str(&barrier_verilog());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts occurrences of an identifier-ish keyword (word boundaries).
    fn count_kw(text: &str, kw: &str) -> usize {
        let mut n = 0;
        let bytes = text.as_bytes();
        let mut start = 0;
        while let Some(pos) = text[start..].find(kw) {
            let at = start + pos;
            let before_ok =
                at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
            let end = at + kw.len();
            let after_ok =
                end >= text.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
            if before_ok && after_ok {
                n += 1;
            }
            start = at + kw.len();
        }
        n
    }

    fn check_balanced(text: &str) {
        assert_eq!(
            count_kw(text, "module"),
            count_kw(text, "endmodule"),
            "module balance"
        );
        assert_eq!(
            count_kw(text, "begin"),
            count_kw(text, "end"),
            "begin/end balance"
        );
        assert_eq!(
            count_kw(text, "case"),
            count_kw(text, "endcase"),
            "case balance"
        );
        assert_eq!(
            count_kw(text, "generate"),
            count_kw(text, "endgenerate"),
            "generate balance"
        );
        assert_eq!(
            text.matches('(').count(),
            text.matches(')').count(),
            "paren balance"
        );
    }

    #[test]
    fn all_modules_are_structurally_balanced() {
        for (name, text) in [
            ("eb", elastic_buffer_verilog()),
            ("arb", rr_arbiter_verilog()),
            ("full", full_meb_verilog()),
            ("reduced", reduced_meb_verilog()),
            ("barrier", barrier_verilog()),
        ] {
            eprintln!("checking {name}");
            check_balanced(&text);
        }
        check_balanced(&rtl_package());
    }

    #[test]
    fn package_contains_every_module_once() {
        let pkg = rtl_package();
        for module in [
            "elastic_buffer",
            "rr_arbiter",
            "full_meb",
            "reduced_meb",
            "mt_barrier",
        ] {
            let decl = format!("module {module} #(");
            assert_eq!(pkg.matches(&decl).count(), 1, "{module} declared once");
        }
    }

    #[test]
    fn reduced_meb_rtl_encodes_the_papers_rules() {
        let text = reduced_meb_verilog();
        // One shared register, not one per thread.
        assert!(text.contains("reg [WIDTH-1:0]         shared_q;"));
        // HALF accepts only while the shared register is free.
        assert!(text.contains("state[t] == HALF && !shared_full"));
        // FULL dequeue refills main from shared.
        assert!(text.contains("main_q[k]   <= shared_q"));
    }

    #[test]
    fn barrier_rtl_is_sense_reversing() {
        let text = barrier_verilog();
        assert!(text.contains("go    <= !go;"));
        assert!(text.contains("WAIT: if (lgo[k] != go)"));
        assert!(text.contains("localparam IDLE = 2'd0, WAIT = 2'd1, FREE = 2'd2;"));
    }

    #[test]
    fn meb_modules_instantiate_the_arbiter() {
        assert!(full_meb_verilog().contains("rr_arbiter #(.N(THREADS)) arb"));
        assert!(reduced_meb_verilog().contains("rr_arbiter #(.N(THREADS)) arb"));
        assert!(full_meb_verilog().contains("elastic_buffer #(.WIDTH(WIDTH)) eb"));
    }
}
